package loadgen

import (
	"testing"
	"time"
)

// fastSettings returns scenario settings scaled down so tests complete in
// milliseconds while still exercising the production code paths.
func fastSettings(s Scenario) TestSettings {
	ts := DefaultSettings(s)
	ts.MinDuration = 10 * time.Millisecond
	switch s {
	case SingleStream:
		ts.MinQueryCount = 50
	case Server:
		ts.MinQueryCount = 100
		ts.ServerTargetQPS = 5000
		ts.ServerTargetLatency = 20 * time.Millisecond
	case MultiStream:
		ts.MinQueryCount = 20
		ts.MultiStreamSamplesPerQuery = 4
		ts.MultiStreamArrivalInterval = 2 * time.Millisecond
	case Offline:
		ts.MinSampleCount = 512
		// The fake SUT answers instantly, so do not require a minimum
		// wall-clock duration; a dedicated test covers duration enforcement.
		ts.MinDuration = 0
	}
	return ts
}

func TestStartTestArgumentErrors(t *testing.T) {
	qsl := newFakeQSL(16, 16)
	sut := newFakeSUT(0, false)
	if _, err := StartTest(nil, qsl, fastSettings(SingleStream)); err != ErrNilSUT {
		t.Errorf("nil SUT: got %v", err)
	}
	if _, err := StartTest(sut, nil, fastSettings(SingleStream)); err != ErrNilQSL {
		t.Errorf("nil QSL: got %v", err)
	}
	bad := fastSettings(SingleStream)
	bad.MinQueryCount = 0
	if _, err := StartTest(sut, qsl, bad); err == nil {
		t.Error("invalid settings: expected error")
	}
	empty := newFakeQSL(0, 0)
	if _, err := StartTest(sut, empty, fastSettings(SingleStream)); err == nil {
		t.Error("empty QSL: expected error")
	}
	failing := newFakeQSL(16, 16)
	failing.failLoad = true
	if _, err := StartTest(sut, failing, fastSettings(SingleStream)); err == nil {
		t.Error("failing load: expected error")
	}
}

func TestSingleStreamPerformanceRun(t *testing.T) {
	qsl := newFakeQSL(64, 32)
	sut := newFakeSUT(100*time.Microsecond, false)
	settings := fastSettings(SingleStream)
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenario != SingleStream || res.Mode != PerformanceMode {
		t.Errorf("result labels wrong: %v %v", res.Scenario, res.Mode)
	}
	if res.QueriesIssued < settings.MinQueryCount {
		t.Errorf("issued %d queries, want >= %d", res.QueriesIssued, settings.MinQueryCount)
	}
	if res.QueriesCompleted != res.QueriesIssued {
		t.Errorf("completed %d != issued %d", res.QueriesCompleted, res.QueriesIssued)
	}
	if res.TestDuration < settings.MinDuration {
		t.Errorf("duration %v below minimum %v", res.TestDuration, settings.MinDuration)
	}
	if res.SingleStreamLatency <= 0 {
		t.Error("missing 90th-percentile latency")
	}
	if res.SingleStreamLatency < 100*time.Microsecond {
		t.Errorf("latency %v below SUT service time", res.SingleStreamLatency)
	}
	if !res.Valid {
		t.Errorf("run invalid: %v", res.ValidityMessages)
	}
	if res.MetricValue() <= 0 {
		t.Error("metric value should be positive")
	}
	if sut.flushed == 0 {
		t.Error("FlushQueries never called")
	}
	// Performance mode only loads the performance sample set.
	if res.PerformanceSamples != 32 {
		t.Errorf("loaded %d samples, want 32", res.PerformanceSamples)
	}
	if qsl.unloadCalls == 0 {
		t.Error("samples never unloaded")
	}
}

func TestSingleStreamAccuracyModeSweepsDataset(t *testing.T) {
	qsl := newFakeQSL(40, 8)
	sut := newFakeSUT(0, false)
	settings := fastSettings(SingleStream)
	settings.Mode = AccuracyMode
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 40 {
		t.Errorf("accuracy mode issued %d queries, want 40 (entire data set)", res.QueriesIssued)
	}
	seen := map[int]bool{}
	for _, idx := range sut.seenIndices() {
		seen[idx] = true
	}
	if len(seen) != 40 {
		t.Errorf("accuracy mode touched %d distinct samples, want 40", len(seen))
	}
	if len(res.AccuracyLog) != 40 {
		t.Errorf("accuracy log has %d entries, want 40", len(res.AccuracyLog))
	}
	// In accuracy mode the whole data set is loaded.
	if res.PerformanceSamples != 40 {
		t.Errorf("loaded %d samples, want 40", res.PerformanceSamples)
	}
	if !res.Valid {
		t.Errorf("accuracy run invalid: %v", res.ValidityMessages)
	}
}

func TestServerScenarioMeetsLatencyBound(t *testing.T) {
	qsl := newFakeQSL(64, 64)
	sut := newFakeSUT(0, true)
	settings := fastSettings(Server)
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerScheduledQPS != settings.ServerTargetQPS {
		t.Errorf("scheduled QPS = %v", res.ServerScheduledQPS)
	}
	if res.ServerAchievedQPS <= 0 {
		t.Error("achieved QPS should be positive")
	}
	if res.LatencyBoundViolations > 0.01 {
		t.Errorf("violations = %v with an instant SUT", res.LatencyBoundViolations)
	}
	if !res.Valid {
		t.Errorf("run invalid: %v", res.ValidityMessages)
	}
}

func TestServerScenarioDetectsOverload(t *testing.T) {
	qsl := newFakeQSL(64, 64)
	// Service time far above the latency bound: every query violates it.
	sut := newFakeSUT(5*time.Millisecond, true)
	settings := fastSettings(Server)
	settings.ServerTargetLatency = 500 * time.Microsecond
	settings.MinQueryCount = 40
	settings.ServerTargetQPS = 2000
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyBoundViolations < 0.5 {
		t.Errorf("expected most queries over bound, got %v", res.LatencyBoundViolations)
	}
	if res.Valid {
		t.Error("overloaded server run should be invalid")
	}
	if len(res.ValidityMessages) == 0 {
		t.Error("invalid run must explain why")
	}
}

func TestMultiStreamScenario(t *testing.T) {
	qsl := newFakeQSL(64, 64)
	// Synchronous completion keeps the happy path free of scheduler-induced
	// timing noise; the slow-SUT test below covers asynchronous completion.
	sut := newFakeSUT(0, false)
	settings := fastSettings(MultiStream)
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued < settings.MinQueryCount {
		t.Errorf("issued %d queries, want >= %d", res.QueriesIssued, settings.MinQueryCount)
	}
	if res.SamplesIssued != res.QueriesIssued*settings.MultiStreamSamplesPerQuery {
		t.Errorf("samples issued = %d, want %d per query", res.SamplesIssued, settings.MultiStreamSamplesPerQuery)
	}
	if !res.Valid {
		t.Errorf("run invalid: %v", res.ValidityMessages)
	}
	if res.MultiStreamStreams != settings.MultiStreamSamplesPerQuery {
		t.Errorf("streams = %d, want %d", res.MultiStreamStreams, settings.MultiStreamSamplesPerQuery)
	}
}

func TestMultiStreamSkipsIntervalsWhenSlow(t *testing.T) {
	qsl := newFakeQSL(64, 64)
	// Service time spans several arrival intervals, so most queries cause
	// skipped intervals and the run must be declared invalid (too many
	// skipped queries) with zero sustained streams.
	sut := newFakeSUT(8*time.Millisecond, true)
	settings := fastSettings(MultiStream)
	settings.MultiStreamArrivalInterval = time.Millisecond
	settings.MinQueryCount = 10
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedIntervals == 0 {
		t.Error("expected skipped intervals with a slow SUT")
	}
	if res.Valid {
		t.Error("run with pervasive skipping should be invalid")
	}
	if res.MultiStreamStreams != 0 {
		t.Errorf("invalid multistream run must report 0 streams, got %d", res.MultiStreamStreams)
	}
}

func TestOfflineScenario(t *testing.T) {
	qsl := newFakeQSL(128, 64)
	sut := newFakeSUT(0, false)
	settings := fastSettings(Offline)
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 1 {
		t.Errorf("offline issued %d queries, want 1", res.QueriesIssued)
	}
	if res.SamplesIssued != settings.MinSampleCount {
		t.Errorf("offline issued %d samples, want %d", res.SamplesIssued, settings.MinSampleCount)
	}
	if res.OfflineSamplesPerSec <= 0 {
		t.Error("offline throughput missing")
	}
	if !res.Valid {
		t.Errorf("run invalid: %v", res.ValidityMessages)
	}
	if sut.queryCount() != 1 {
		t.Errorf("SUT saw %d queries", sut.queryCount())
	}
}

func TestOfflineExpectedQPSScalesSamples(t *testing.T) {
	qsl := newFakeQSL(128, 64)
	sut := newFakeSUT(0, false)
	settings := fastSettings(Offline)
	settings.MinDuration = 100 * time.Millisecond
	settings.OfflineExpectedQPS = 100000 // 100k samples/s * 0.1s = 10k samples
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesIssued < 10000 {
		t.Errorf("offline issued %d samples, want >= 10000 from expected-QPS scaling", res.SamplesIssued)
	}
}

func TestOfflineShortRunIsInvalid(t *testing.T) {
	qsl := newFakeQSL(128, 64)
	sut := newFakeSUT(0, false)
	settings := fastSettings(Offline)
	settings.MinDuration = time.Hour // impossible to satisfy with 512 instant samples
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Error("offline run far below MinDuration must be invalid")
	}
}

func TestOfflineAccuracyModeCoversDataset(t *testing.T) {
	qsl := newFakeQSL(96, 16)
	sut := newFakeSUT(0, false)
	settings := fastSettings(Offline)
	settings.Mode = AccuracyMode
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesIssued != 96 {
		t.Errorf("accuracy offline issued %d samples, want 96", res.SamplesIssued)
	}
	if len(res.AccuracyLog) != 96 {
		t.Errorf("accuracy log has %d entries", len(res.AccuracyLog))
	}
}

func TestAccuracySinkStreamsInsteadOfAccumulating(t *testing.T) {
	qsl := newFakeQSL(96, 16)
	sut := newFakeSUT(0, false)
	settings := fastSettings(Offline)
	settings.Mode = AccuracyMode
	seen := make(map[int]int)
	entries := 0
	settings.AccuracySink = func(e AccuracyEntry) {
		seen[e.SampleIndex]++
		entries++
	}
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AccuracyLog) != 0 {
		t.Errorf("sink set but %d entries accumulated in AccuracyLog", len(res.AccuracyLog))
	}
	if entries != 96 || len(seen) != 96 {
		t.Errorf("sink saw %d entries over %d distinct samples, want 96/96", entries, len(seen))
	}
}

func TestAccuracyLogSamplingInPerformanceMode(t *testing.T) {
	qsl := newFakeQSL(64, 64)
	sut := newFakeSUT(0, false)
	settings := fastSettings(SingleStream)
	settings.MinQueryCount = 400
	settings.AccuracyLogSamplingRate = 0.25
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(res.AccuracyLog)) / float64(res.QueriesIssued)
	if frac < 0.1 || frac > 0.45 {
		t.Errorf("sampled accuracy-log fraction = %v, want ~0.25", frac)
	}

	settings.AccuracyLogSamplingRate = 0
	res2, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.AccuracyLog) != 0 {
		t.Errorf("logging disabled but %d entries recorded", len(res2.AccuracyLog))
	}
}

func TestSampleIndexPolicies(t *testing.T) {
	settings := fastSettings(SingleStream)
	settings.MinQueryCount = 30
	settings.MinDuration = 0

	// DuplicateSingle: every query uses the same index.
	sutDup := newFakeSUT(0, false)
	if _, err := StartTest(sutDup, newFakeQSL(64, 64), withPolicy(settings, DuplicateSingle)); err != nil {
		t.Fatal(err)
	}
	for _, idx := range sutDup.seenIndices() {
		if idx != 0 {
			t.Fatalf("DuplicateSingle issued index %d", idx)
		}
	}

	// UniqueSweep: the first len(loaded) queries cover distinct indices.
	sutUnique := newFakeSUT(0, false)
	if _, err := StartTest(sutUnique, newFakeQSL(64, 64), withPolicy(settings, UniqueSweep)); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	indices := sutUnique.seenIndices()
	for i := 0; i < 30; i++ {
		if seen[indices[i]] {
			t.Fatalf("UniqueSweep repeated index %d within the first sweep", indices[i])
		}
		seen[indices[i]] = true
	}

	// RandomWithReplacement is deterministic per seed.
	sutA := newFakeSUT(0, false)
	sutB := newFakeSUT(0, false)
	if _, err := StartTest(sutA, newFakeQSL(64, 64), settings); err != nil {
		t.Fatal(err)
	}
	if _, err := StartTest(sutB, newFakeQSL(64, 64), settings); err != nil {
		t.Fatal(err)
	}
	ia, ib := sutA.seenIndices(), sutB.seenIndices()
	if len(ia) != len(ib) {
		t.Fatalf("different query counts: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("same seed produced different traffic at query %d", i)
		}
	}
	// A different seed produces different traffic.
	sutC := newFakeSUT(0, false)
	alt := settings
	alt.QuerySeed = 12345
	if _, err := StartTest(sutC, newFakeQSL(64, 64), alt); err != nil {
		t.Fatal(err)
	}
	ic := sutC.seenIndices()
	same := 0
	for i := range ia {
		if i < len(ic) && ia[i] == ic[i] {
			same++
		}
	}
	if same == len(ia) {
		t.Error("alternate seed produced identical traffic")
	}
}

func withPolicy(ts TestSettings, p SampleIndexPolicy) TestSettings {
	ts.SampleIndexPolicy = p
	return ts
}

func TestQueryCompletePartialAndDuplicate(t *testing.T) {
	q := &Query{ID: 1, Samples: []QuerySample{{ID: 10, Index: 0}, {ID: 11, Index: 1}}}
	var completed [][]Response
	q.complete = func(_ *Query, responses []Response) {
		completed = append(completed, responses)
	}
	q.Complete([]Response{{SampleID: 10}})
	if len(completed) != 0 {
		t.Fatal("query completed before all samples responded")
	}
	// Duplicate response for sample 10 must not count as the second sample.
	q.Complete([]Response{{SampleID: 10}})
	if len(completed) != 0 {
		t.Fatal("duplicate response completed the query")
	}
	q.Complete([]Response{{SampleID: 11}})
	if len(completed) != 1 {
		t.Fatalf("query did not complete after all samples responded")
	}
	if len(completed[0]) != 2 {
		t.Fatalf("completion saw %d responses, want 2", len(completed[0]))
	}
	// Further calls are ignored.
	q.Complete([]Response{{SampleID: 11}})
	if len(completed) != 1 {
		t.Fatal("query completed twice")
	}
}

func TestMinDurationSatisfiedIsNotFlaggedShort(t *testing.T) {
	// Regression test: the reported TestDuration must cover the point at
	// which the generator observed MinDuration being met, even if the last
	// query completed a hair earlier — otherwise runs are spuriously flagged
	// a few microseconds short of the minimum.
	qsl := newFakeQSL(64, 64)
	sut := newFakeSUT(0, false)
	settings := fastSettings(SingleStream)
	settings.MinQueryCount = 1
	settings.MinDuration = 50 * time.Millisecond
	for i := 0; i < 3; i++ {
		res, err := StartTest(sut, qsl, settings)
		if err != nil {
			t.Fatal(err)
		}
		if res.TestDuration < settings.MinDuration {
			t.Fatalf("reported duration %v below the minimum the generator waited for", res.TestDuration)
		}
		if !res.Valid {
			t.Fatalf("run invalid: %v", res.ValidityMessages)
		}
	}
}

func TestMaxQueryCountCapsRun(t *testing.T) {
	qsl := newFakeQSL(64, 64)
	sut := newFakeSUT(0, false)
	settings := fastSettings(SingleStream)
	settings.MinQueryCount = 10
	settings.MaxQueryCount = 10
	settings.MinDuration = time.Hour // would run forever without the cap
	res, err := StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesIssued != 10 {
		t.Errorf("issued %d queries, want exactly 10", res.QueriesIssued)
	}
	// The run is too short for the 1-hour minimum duration, so it must be
	// flagged invalid rather than silently accepted.
	if res.Valid {
		t.Error("run shorter than MinDuration must be invalid")
	}
}
