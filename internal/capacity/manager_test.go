package capacity

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mlperf/internal/serve"
)

// fakePool mimics serve.Server's resize semantics over in-memory state: a
// resize applies each positive, changed dimension and returns one event per
// change.
type fakePool struct {
	mu     sync.Mutex
	snaps  map[string]serve.Snapshot
	limits map[string]serve.Limits
	reqs   []serve.ResizeRequest
}

func newFakePool(model string, lim serve.Limits) *fakePool {
	return &fakePool{
		snaps:  map[string]serve.Snapshot{model: {}},
		limits: map[string]serve.Limits{model: lim},
	}
}

func (p *fakePool) Models() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	models := make([]string, 0, len(p.limits))
	for m := range p.limits {
		models = append(models, m)
	}
	sort.Strings(models)
	return models
}

func (p *fakePool) ModelMetrics(model string) (serve.Snapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snaps[model], nil
}

func (p *fakePool) Limits(model string) (serve.Limits, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.limits[model], nil
}

func (p *fakePool) Resize(model string, req serve.ResizeRequest) ([]serve.ResizeEvent, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reqs = append(p.reqs, req)
	lim := p.limits[model]
	var events []serve.ResizeEvent
	change := func(resource string, cur *int, to int) {
		if to > 0 && to != *cur {
			events = append(events, serve.ResizeEvent{
				Time: time.Unix(1, 0), Model: model, Resource: resource,
				From: *cur, To: to, Reason: req.Reason,
			})
			*cur = to
		}
	}
	change(serve.ResourceWorkers, &lim.Workers, req.Workers)
	change(serve.ResourceQueue, &lim.QueueDepth, req.QueueDepth)
	change(serve.ResourceMaxBatch, &lim.MaxBatch, req.MaxBatch)
	p.limits[model] = lim
	return events, nil
}

// reject bumps the model's reject counter, making the next tick a pressure
// tick; idle leaves the snapshot untouched, making the next tick idle.
func (p *fakePool) reject(model string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.snaps[model]
	s.Rejected++
	p.snaps[model] = s
}

func testEnv() *Env {
	return &Env{CPULimit: 4, GOMAXPROCS: 4, Source: "test"}
}

func TestManagerGrowsUnderSustainedPressure(t *testing.T) {
	pool := newFakePool("m", serve.Limits{Workers: 2, QueueDepth: 4, MaxBatch: 2})
	m := NewManager(pool, Config{
		Env: testEnv(), MaxWorkers: 16, MaxQueue: 64,
		GrowAfter: 2, ShrinkAfter: 8, Cooldown: time.Second,
	})
	defer m.Close()

	base := time.Unix(1000, 0)
	m.Tick(base) // prime
	pool.reject("m")
	m.Tick(base.Add(1 * time.Second))
	if lim, _ := pool.Limits("m"); lim.Workers != 2 {
		t.Fatalf("grew after one pressure tick: workers %d", lim.Workers)
	}
	pool.reject("m")
	m.Tick(base.Add(2 * time.Second))
	lim, _ := pool.Limits("m")
	if lim.Workers != 4 || lim.QueueDepth != 8 {
		t.Fatalf("after sustained pressure: workers %d queue %d, want 4/8", lim.Workers, lim.QueueDepth)
	}
	events := m.Events()
	if len(events) != 2 {
		t.Fatalf("events = %v, want workers+queue grow pair", events)
	}
	for _, e := range events {
		if e.Reason != "capacity-grow" {
			t.Errorf("event reason %q, want capacity-grow", e.Reason)
		}
	}
	st := m.State()
	if len(st.Models) != 1 || st.Models[0].Resizes != 2 || st.Models[0].Workers != 4 {
		t.Fatalf("state = %+v", st.Models)
	}
}

func TestManagerCooldownHoldsStill(t *testing.T) {
	pool := newFakePool("m", serve.Limits{Workers: 2, QueueDepth: 4, MaxBatch: 2})
	m := NewManager(pool, Config{
		Env: testEnv(), MaxWorkers: 64, MaxQueue: 512,
		GrowAfter: 1, ShrinkAfter: 8, Cooldown: 10 * time.Second,
	})
	defer m.Close()

	base := time.Unix(1000, 0)
	m.Tick(base)
	pool.reject("m")
	m.Tick(base.Add(1 * time.Second)) // grow #1
	if lim, _ := pool.Limits("m"); lim.Workers != 4 {
		t.Fatalf("first grow: workers %d, want 4", lim.Workers)
	}
	for i := 2; i <= 10; i++ { // all within the 10s cooldown of the grow at +1s
		pool.reject("m")
		m.Tick(base.Add(time.Duration(i) * time.Second))
	}
	if lim, _ := pool.Limits("m"); lim.Workers != 4 {
		t.Fatalf("resized during cooldown: workers %d", lim.Workers)
	}
	pool.reject("m")
	m.Tick(base.Add(12 * time.Second)) // cooldown expired
	if lim, _ := pool.Limits("m"); lim.Workers != 8 {
		t.Fatalf("after cooldown: workers %d, want 8", lim.Workers)
	}
}

func TestManagerShrinksWhenIdle(t *testing.T) {
	pool := newFakePool("m", serve.Limits{Workers: 8, QueueDepth: 16, MaxBatch: 2})
	m := NewManager(pool, Config{
		Env: testEnv(), MaxWorkers: 16, MaxQueue: 64,
		GrowAfter: 2, ShrinkAfter: 3, Cooldown: time.Second,
	})
	defer m.Close()

	base := time.Unix(1000, 0)
	for i := 0; i <= 3; i++ { // prime + 3 idle ticks
		m.Tick(base.Add(time.Duration(i) * time.Second))
	}
	lim, _ := pool.Limits("m")
	if lim.Workers != 4 {
		t.Fatalf("after sustained idle: workers %d, want 4", lim.Workers)
	}
	events := m.Events()
	if len(events) != 1 || events[0].Reason != "capacity-shrink" {
		t.Fatalf("events = %v, want one capacity-shrink", events)
	}
}

func TestManagerClampsAtCeiling(t *testing.T) {
	pool := newFakePool("m", serve.Limits{Workers: 4, QueueDepth: 8, MaxBatch: 2})
	m := NewManager(pool, Config{
		Env: testEnv(), MaxWorkers: 4, MaxQueue: 8, // already at both ceilings
		GrowAfter: 1, ShrinkAfter: 8, Cooldown: time.Second,
	})
	defer m.Close()

	base := time.Unix(1000, 0)
	m.Tick(base)
	for i := 1; i <= 5; i++ {
		pool.reject("m")
		m.Tick(base.Add(time.Duration(i) * 10 * time.Second))
	}
	if lim, _ := pool.Limits("m"); lim.Workers != 4 || lim.QueueDepth != 8 {
		t.Fatalf("moved past the clamp: %+v", lim)
	}
	if got := m.Events(); len(got) != 0 {
		t.Fatalf("recorded no-op resizes: %v", got)
	}
}

func TestManagerInitialWorkers(t *testing.T) {
	pool := newFakePool("m", serve.Limits{Workers: 8, QueueDepth: 16, MaxBatch: 2})
	m := NewManager(pool, Config{Env: testEnv(), MaxWorkers: 16, InitialWorkers: 2})
	defer m.Close()

	lim, _ := pool.Limits("m")
	if lim.Workers != 2 {
		t.Fatalf("initial workers %d, want conservative start of 2", lim.Workers)
	}
	events := m.Events()
	if len(events) != 1 || events[0].Reason != "capacity-initial" {
		t.Fatalf("events = %v, want one capacity-initial", events)
	}
}

func TestManagerMemoryPressureBlocksGrowth(t *testing.T) {
	pool := newFakePool("m", serve.Limits{Workers: 8, QueueDepth: 16, MaxBatch: 2})
	// A 1-byte memory limit makes the heap always over the headroom factor.
	env := &Env{CPULimit: 4, MemoryLimit: 1, Source: "test"}
	m := NewManager(pool, Config{
		Env: env, MaxWorkers: 64, MaxQueue: 512,
		GrowAfter: 2, ShrinkAfter: 8, Cooldown: time.Second,
	})
	defer m.Close()

	base := time.Unix(1000, 0)
	m.Tick(base)
	pool.reject("m")
	m.Tick(base.Add(1 * time.Second))
	pool.reject("m")
	m.Tick(base.Add(2 * time.Second))
	lim, _ := pool.Limits("m")
	if lim.Workers != 4 {
		t.Fatalf("memory-bound pressure: workers %d, want shrink to 4", lim.Workers)
	}
	events := m.Events()
	if len(events) != 1 || events[0].Reason != "capacity-shrink" {
		t.Fatalf("events = %v, want one capacity-shrink", events)
	}
}

func TestManagerWritePrometheus(t *testing.T) {
	pool := newFakePool("m", serve.Limits{Workers: 2, QueueDepth: 4, MaxBatch: 2})
	m := NewManager(pool, Config{
		Env: testEnv(), MaxWorkers: 16, MaxQueue: 64,
		GrowAfter: 1, ShrinkAfter: 8, Cooldown: time.Second,
	})
	defer m.Close()
	base := time.Unix(1000, 0)
	m.Tick(base)
	pool.reject("m")
	m.Tick(base.Add(time.Second))

	var sb strings.Builder
	m.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"mlperf_capacity_max_workers 16",
		`mlperf_capacity_cpu_limit{source="test"} 4`,
		`mlperf_capacity_headroom_workers{model="m"}`,
		`mlperf_capacity_resizes_total{model="m",resource="workers"} 1`,
		`mlperf_capacity_resize_last{model="m",resource="workers"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape output missing %q:\n%s", want, out)
		}
	}
}
