package model

import (
	"fmt"
	"math"
	"sort"

	"mlperf/internal/metrics"
	"mlperf/internal/nn"
	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

// DetectorConfig configures the miniature SSD-style object detectors.
type DetectorConfig struct {
	Classes        int // object classes (background is implicit)
	Channels       int
	ImageSize      int
	Seed           uint64
	ScoreThreshold float64
	NMSIoU         float64
	MaxDetections  int
}

func (c *DetectorConfig) normalize() error {
	if c.Classes <= 0 {
		return fmt.Errorf("model: detector needs at least 1 object class, got %d", c.Classes)
	}
	if c.Channels <= 0 {
		c.Channels = 3
	}
	if c.ImageSize <= 0 {
		c.ImageSize = 16
	}
	if c.ImageSize < 8 {
		return fmt.Errorf("model: image size %d too small for the detector backbone", c.ImageSize)
	}
	if c.ScoreThreshold <= 0 {
		c.ScoreThreshold = 0.3
	}
	if c.NMSIoU <= 0 {
		c.NMSIoU = 0.5
	}
	if c.MaxDetections <= 0 {
		c.MaxDetections = 10
	}
	return nil
}

// SSDDetector is a single-shot detector: a CNN backbone producing a feature
// map, and a convolutional head that predicts, for every feature-map cell,
// class scores and box offsets relative to the cell's anchor.
type SSDDetector struct {
	info       Info
	backbone   *nn.Sequential
	head       *nn.Conv
	inShape    []int
	classes    int
	cfg        DetectorConfig
	featH      int
	featW      int
	footprint  int // per-sample activation bytes; micro-batch derives live
}

// Info returns the model's metadata with Params and OpsPerInput filled in.
func (d *SSDDetector) Info() Info { return d.info }

// InputShape returns the expected CHW input shape.
func (d *SSDDetector) InputShape() []int {
	s := make([]int, len(d.inShape))
	copy(s, d.inShape)
	return s
}

// Weights implements WeightedModel.
func (d *SSDDetector) Weights() []*tensor.Tensor {
	w := collectWeights(d.backbone)
	w = append(w, d.head.Weights, d.head.Bias)
	return w
}

// Detect implements Detector. The raw head output is decoded into boxes with
// a sigmoid score per class, a score threshold, and greedy non-maximum
// suppression — the same post-processing shape as the reference SSD models.
func (d *SSDDetector) Detect(img *tensor.Tensor) ([]metrics.Box, error) {
	if img.Rank() != 3 {
		return nil, fmt.Errorf("model %s: want CHW input, got %v", d.info.Name, img.Shape())
	}
	s := tensor.GetScratch()
	defer tensor.PutScratch(s)
	features, err := nn.ForwardWith(d.backbone, img, s)
	if err != nil {
		return nil, err
	}
	raw, err := nn.ForwardWith(d.head, features, s)
	if err != nil {
		return nil, err
	}
	return d.decode(raw)
}

// decode converts the head's (perCell × H × W) output into scored boxes.
func (d *SSDDetector) decode(raw *tensor.Tensor) ([]metrics.Box, error) {
	shape := raw.Shape()
	perCell := 4 + d.classes
	if shape[0] != perCell {
		return nil, fmt.Errorf("model %s: head produced %d channels, want %d", d.info.Name, shape[0], perCell)
	}
	h, w := shape[1], shape[2]
	var candidates []metrics.Box
	for cy := 0; cy < h; cy++ {
		for cx := 0; cx < w; cx++ {
			// Anchor box centred on the cell.
			anchorCX := (float64(cx) + 0.5) / float64(w)
			anchorCY := (float64(cy) + 0.5) / float64(h)
			anchorW := 1.5 / float64(w)
			anchorH := 1.5 / float64(h)

			dx := float64(raw.At(0, cy, cx))
			dy := float64(raw.At(1, cy, cx))
			dw := float64(raw.At(2, cy, cx))
			dh := float64(raw.At(3, cy, cx))

			cxp := anchorCX + 0.1*sigmoid64(dx) - 0.05
			cyp := anchorCY + 0.1*sigmoid64(dy) - 0.05
			wp := anchorW * (0.5 + sigmoid64(dw))
			hp := anchorH * (0.5 + sigmoid64(dh))

			bestClass, bestScore := -1, 0.0
			for c := 0; c < d.classes; c++ {
				score := sigmoid64(float64(raw.At(4+c, cy, cx)))
				if score > bestScore {
					bestScore = score
					bestClass = c
				}
			}
			if bestClass < 0 || bestScore < d.cfg.ScoreThreshold {
				continue
			}
			box := metrics.Box{
				X1: clamp01(cxp - wp/2), Y1: clamp01(cyp - hp/2),
				X2: clamp01(cxp + wp/2), Y2: clamp01(cyp + hp/2),
				Class: bestClass, Score: bestScore,
			}
			if box.Area() > 0 {
				candidates = append(candidates, box)
			}
		}
	}
	return nonMaxSuppression(candidates, d.cfg.NMSIoU, d.cfg.MaxDetections), nil
}

// sigmoid64 matches tensor.Sigmoid's rounding exactly (float32 in, float64
// math, float32 out) without allocating a one-element tensor per call.
func sigmoid64(x float64) float64 {
	return float64(float32(1 / (1 + math.Exp(-float64(float32(x))))))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// nonMaxSuppression greedily keeps the highest-scoring boxes, dropping boxes
// of the same class that overlap a kept box by more than iouThreshold.
func nonMaxSuppression(boxes []metrics.Box, iouThreshold float64, maxKeep int) []metrics.Box {
	sort.SliceStable(boxes, func(i, j int) bool { return boxes[i].Score > boxes[j].Score })
	var kept []metrics.Box
	for _, b := range boxes {
		if len(kept) >= maxKeep {
			break
		}
		suppressed := false
		for _, k := range kept {
			if k.Class == b.Class && metrics.IoU(k, b) > iouThreshold {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, b)
		}
	}
	return kept
}

// NewSSDResNet34Mini builds the heavyweight detector: an SSD head on a
// residual backbone.
func NewSSDResNet34Mini(cfg DetectorConfig) (*SSDDetector, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x55dd34)
	backbone := nn.NewSequential("ssd-resnet34-backbone",
		nn.NewConv("stem", cfg.Channels, 16, 3, 1, 1, rng),
		nn.NewResidual("res1", nn.NewSequential("res1_body",
			nn.NewConv("r1c1", 16, 16, 3, 1, 1, rng),
			nn.NewConv("r1c2", 16, 16, 3, 1, 1, rng),
		)),
		nn.NewConv("down1", 16, 32, 3, 2, 1, rng),
		nn.NewResidual("res2", nn.NewSequential("res2_body",
			nn.NewConv("r2c1", 32, 32, 3, 1, 1, rng),
			nn.NewConv("r2c2", 32, 32, 3, 1, 1, rng),
		)),
		nn.NewConv("down2", 32, 32, 3, 2, 1, rng),
	)
	return finishDetector(SSDResNet34, backbone, 32, cfg, rng)
}

// NewSSDMobileNetMini builds the lightweight detector: an SSD head on a
// depthwise-separable backbone.
func NewSSDMobileNetMini(cfg DetectorConfig) (*SSDDetector, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x55dd01)
	backbone := nn.NewSequential("ssd-mobilenet-backbone",
		nn.NewConv("stem", cfg.Channels, 8, 3, 2, 1, rng),
		nn.NewDepthwiseConv("dw1", 8, 3, 1, 1, rng),
		pointwise("pw1", 8, 16, rng),
		nn.NewDepthwiseConv("dw2", 16, 3, 2, 1, rng),
		pointwise("pw2", 16, 16, rng),
	)
	return finishDetector(SSDMobileNet, backbone, 16, cfg, rng)
}

// finishDetector attaches the SSD head and fills metadata.
func finishDetector(name Name, backbone *nn.Sequential, featC int, cfg DetectorConfig, rng *stats.RNG) (*SSDDetector, error) {
	info, err := Describe(name)
	if err != nil {
		return nil, err
	}
	inShape := []int{cfg.Channels, cfg.ImageSize, cfg.ImageSize}
	featShape, err := backbone.OutputShape(inShape)
	if err != nil {
		return nil, fmt.Errorf("model %s: invalid backbone for input %v: %w", name, inShape, err)
	}
	if featShape[0] != featC {
		return nil, fmt.Errorf("model %s: backbone produced %d channels, want %d", name, featShape[0], featC)
	}
	head := nn.NewConv("ssd-head", featC, 4+cfg.Classes, 3, 1, 1, rng)
	head.Relu = false

	backOps, err := backbone.Ops(inShape)
	if err != nil {
		return nil, err
	}
	headOps, err := head.Ops(featShape)
	if err != nil {
		return nil, err
	}
	footprint, err := activationFootprintBytes(append(append([]nn.Layer{}, backbone.Layers()...), head), inShape)
	if err != nil {
		return nil, err
	}
	info.Params = backbone.ParamCount() + head.ParamCount()
	info.OpsPerInput = backOps + headOps
	return &SSDDetector{
		info: info, backbone: backbone, head: head, inShape: inShape,
		classes: cfg.Classes, cfg: cfg, featH: featShape[1], featW: featShape[2],
		footprint: footprint,
	}, nil
}
