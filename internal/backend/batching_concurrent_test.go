package backend

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mlperf/internal/loadgen"
)

// countingSUT records every sample it is asked to infer, thread-safely.
type countingSUT struct {
	mu      sync.Mutex
	seen    map[uint64]int // sample ID -> times issued
	queries atomic.Int64
}

func newCountingSUT() *countingSUT { return &countingSUT{seen: make(map[uint64]int)} }

func (c *countingSUT) Name() string { return "counting" }

func (c *countingSUT) IssueQuery(q *loadgen.Query) {
	c.queries.Add(1)
	responses := make([]loadgen.Response, len(q.Samples))
	c.mu.Lock()
	for i, s := range q.Samples {
		c.seen[s.ID]++
		responses[i] = loadgen.Response{SampleID: s.ID, Data: []byte{1}}
	}
	c.mu.Unlock()
	q.Complete(responses)
}

func (c *countingSUT) FlushQueries() {}

// TestBatchingConcurrentIssuers hammers one Batching wrapper from many
// goroutines — interleaving IssueQuery, FlushQueries, Flush and Reopen the
// way the serve worker pool and multi-connection drivers do — and verifies
// under the race detector that every sample is forwarded to the inner SUT
// exactly once and every query completes exactly once.
func TestBatchingConcurrentIssuers(t *testing.T) {
	inner := newCountingSUT()
	b, err := NewBatching(inner, 4, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	const (
		issuers    = 8
		perIssuer  = 64
		totalJobs  = issuers * perIssuer
		sampleBase = 1000
	)
	var completions atomic.Int64
	done := make(chan struct{}, totalJobs)
	var wg sync.WaitGroup
	for g := 0; g < issuers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perIssuer; i++ {
				id := uint64(sampleBase + g*perIssuer + i)
				q := &loadgen.Query{ID: id, Samples: []loadgen.QuerySample{{ID: id, Index: int(id)}}}
				q.SetCompletionHandler(func(_ *loadgen.Query, rs []loadgen.Response) {
					if len(rs) != 1 || rs[0].SampleID != id {
						t.Errorf("query %d completed with %v", id, rs)
					}
					completions.Add(1)
					done <- struct{}{}
				})
				b.IssueQuery(q)
				// Sprinkle control-path calls into the middle of the traffic.
				switch i % 16 {
				case 5:
					b.Flush()
				case 9:
					b.FlushQueries()
				case 13:
					b.Reopen()
				}
			}
		}(g)
	}
	wg.Wait()
	b.FlushQueries()

	timeout := time.After(30 * time.Second)
	for n := 0; n < totalJobs; n++ {
		select {
		case <-done:
		case <-timeout:
			t.Fatalf("only %d of %d queries completed", completions.Load(), totalJobs)
		}
	}

	inner.mu.Lock()
	defer inner.mu.Unlock()
	if len(inner.seen) != totalJobs {
		t.Errorf("inner SUT saw %d distinct samples, want %d", len(inner.seen), totalJobs)
	}
	for id, times := range inner.seen {
		if times != 1 {
			t.Errorf("sample %d forwarded %d times", id, times)
		}
	}
}

// TestBatchingConcurrentMultiSampleQueries covers the merge/demux path under
// concurrency: multi-sample queries from several goroutines must each
// complete exactly once with all their samples answered.
func TestBatchingConcurrentMultiSampleQueries(t *testing.T) {
	inner := newCountingSUT()
	b, err := NewBatching(inner, 8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	const issuers, queriesPer, samplesPer = 4, 32, 3
	var wg sync.WaitGroup
	results := make(chan int, issuers*queriesPer)
	var next atomic.Uint64
	for g := 0; g < issuers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queriesPer; i++ {
				q := &loadgen.Query{ID: next.Add(1)}
				for s := 0; s < samplesPer; s++ {
					q.Samples = append(q.Samples, loadgen.QuerySample{ID: next.Add(1), Index: s})
				}
				ch := make(chan []loadgen.Response, 1)
				q.SetCompletionHandler(func(_ *loadgen.Query, rs []loadgen.Response) { ch <- rs })
				b.IssueQuery(q)
				rs := <-ch
				results <- len(rs)
			}
		}()
	}
	// Keep the timer path live while issuers run.
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		for i := 0; i < 20; i++ {
			b.Flush()
			time.Sleep(500 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-flushDone
	close(results)
	for n := range results {
		if n != samplesPer {
			t.Errorf("query completed with %d responses, want %d", n, samplesPer)
		}
	}
}
