// Command mlperf-serve exposes benchmark tasks' reference models over network
// sockets: it builds each task's zoo model and synthetic data set exactly as
// mlperf-loadgen does (same -samples/-seed ⇒ same weights and samples, so
// responses are bit-identical to an in-process run), then serves inference
// requests — with dynamic batching, bounded admission and per-request
// deadlines — until interrupted.
//
// One process can host a replica fleet (-replicas starts N identical
// listeners on consecutive ports) and/or several models behind each listener
// (-tasks serves one named engine per task, each with its own admission
// queue, batcher and worker pool — the network form of multitenancy).
//
// Drive it from another process with mlperf-loadgen's remote backend:
//
//	mlperf-serve -task image-classification-light -addr 127.0.0.1:9090 \
//	    -replicas 2 -samples 128 -seed 42 &
//	mlperf-loadgen -task image-classification-light -scenario Server \
//	    -backend remote -addr 127.0.0.1:9090,127.0.0.1:9091 \
//	    -samples 128 -seed 42
//
// With -tasks, clients address a model by its task name (mlperf-loadgen
// -model <task>). On SIGINT/SIGTERM the server drains admitted work and
// prints per-replica, per-model serving metrics (queue depth, batch-size
// histogram, queue/service latency percentiles, rejects) as JSON.
//
// Capacity is dynamic: the sizing flags (-workers, -queue, -max-batch) are
// applied through the live Resize path, -metrics-addr serves every replica's
// counters in Prometheus text format at /metrics (consecutive ports, one per
// replica), and -autosize attaches a capacity manager per replica that probes
// the cgroup CPU/memory limits and grows or shrinks each pool from observed
// load, its decisions exposed on the same scrape.
//
// Observability rides the same listener: -pprof mounts net/http/pprof under
// /debug/pprof/, and -trace N samples every Nth request's server-side stages
// (admit, queue, assembly, service, encode, reply) plus every tail outlier,
// exporting the spans as per-stage Prometheus histograms on /metrics, as
// Chrome trace-event JSON at /debug/trace, and — with -trace-out — as a
// trace file written on shutdown, viewable in Perfetto or chrome://tracing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mlperf/internal/capacity"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/payload"
	"mlperf/internal/serve"
	"mlperf/internal/tensor"
	"mlperf/internal/trace"
)

func main() {
	var (
		taskName  = flag.String("task", string(core.ImageClassificationLight), "benchmark task whose reference model to serve")
		taskList  = flag.String("tasks", "", "comma-separated tasks to host as named models behind each listener (overrides -task; model id = task name)")
		addr      = flag.String("addr", "127.0.0.1:9090", "listen address (replicas bind consecutive ports from it)")
		replicas  = flag.Int("replicas", 1, "how many identical server replicas to start")
		samples   = flag.Int("samples", 128, "synthetic data-set size (must match the driving loadgen)")
		seed      = flag.Uint64("seed", 42, "model/data seed (must match the driving loadgen)")
		workers   = flag.Int("workers", 0, "inference workers per model (0 = all cores)")
		queue     = flag.Int("queue", 1024, "admission queue depth per model")
		policy    = flag.String("policy", "reject", "overload policy: reject or shed-oldest")
		maxBatch  = flag.Int("max-batch", 0, "dynamic batch cap (0 = the engine's derived micro-batch)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "how long to hold an under-full batch open")
		metrics   = flag.String("metrics-addr", "", "Prometheus text endpoint address (replicas bind consecutive ports from it; empty = disabled)")
		autosize  = flag.Bool("autosize", false, "attach a capacity manager per replica: probe cgroup limits, grow/shrink worker pools and queues against observed load")
		calibrate = flag.Bool("calibrate", false, "measure this machine's GEMM throughput, fork overhead and L2 at startup and derive the kernel tuning knobs from the measurements")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the metrics listener (requires -metrics-addr)")
		codecName = flag.String("codec", "binary", "response payload codec: binary (compact varint framing) or json (for pre-codec peers)")
		traceEach = flag.Int("trace", 0, "trace every Nth request through the request-path stages, plus every tail outlier (0 = tracing off)")
		traceOut  = flag.String("trace-out", "", "write the captured spans as Chrome trace-event JSON to this file on shutdown (requires -trace)")
	)
	flag.Parse()

	// Kernel setup happens before any engine is built. Calibration only moves
	// scheduling knobs — results stay bit-identical — and because micro-batches
	// derive from the live knobs, it would also be safe later; doing it first
	// simply keeps the startup log coherent. The active SIMD tier and knob
	// values are logged and ride every metrics snapshot (Snapshot.Kernel).
	if *calibrate {
		c := tensor.Calibrate()
		c.Apply()
		fmt.Printf("calibrated: mac-rate=%.3g/s fork-overhead=%v l2=%d -> flop-threshold=%d panel-bytes=%d\n",
			c.MACRate, c.ForkOverhead, c.L2Bytes, c.FlopThreshold, c.PanelBytes)
	}
	kc := tensor.CurrentKernelConfig()
	fmt.Printf("kernel: simd=%s (supported %s) flop-threshold=%d panel-bytes=%d calibrated=%v\n",
		kc.SIMD, tensor.SupportedSIMD(), kc.FlopThreshold, kc.PanelBytes, kc.Calibrated)

	overload, err := serve.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	codec, err := payload.ParseCodec(*codecName)
	if err != nil {
		fatal(err)
	}
	if *replicas < 1 {
		fatal(fmt.Errorf("-replicas must be at least 1, got %d", *replicas))
	}

	tasks := []string{*taskName}
	named := false
	if *taskList != "" {
		tasks = strings.Split(*taskList, ",")
		named = true
	}

	// The worker/queue/batch flags are NOT baked into the server config:
	// servers start on their derived defaults and the flags are applied
	// through Resize below — the same live-reconfiguration path the capacity
	// manager uses, so flag values show up as auditable resize events and a
	// manager can later move what a flag set.
	// One tracer is shared by every replica in the process: the ring and
	// histograms are per model, so a merged dump still attributes spans
	// correctly, and /debug/trace on any replica's metrics port exports the
	// whole fleet's records.
	var tracer *trace.Tracer
	if *traceEach > 0 {
		tracer = trace.New(trace.Config{SampleEvery: *traceEach})
		fmt.Printf("tracing: 1 in %d requests, tail outliers always\n", tracer.SampleEvery())
	} else if *traceOut != "" {
		fatal(fmt.Errorf("-trace-out needs -trace to capture anything"))
	}

	cfg := serve.Config{Policy: overload, BatchWait: *batchWait, Codec: codec, Tracer: tracer, EnablePprof: *pprofOn}
	for _, name := range tasks {
		name = strings.TrimSpace(name)
		assembly, err := harness.BuildNative(core.Task(name), harness.BuildOptions{
			DatasetSamples: *samples, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		// The serving side owns sample residency: load the whole data set
		// before accepting traffic (the untimed load of the benchmark rules —
		// the remote LoadGen's own LoadSamplesToRAM applies to its local copy
		// only).
		all := make([]int, assembly.QSL.TotalSampleCount())
		for i := range all {
			all[i] = i
		}
		if err := assembly.QSL.LoadSamplesToRAM(all); err != nil {
			fatal(err)
		}
		if named {
			cfg.Models = append(cfg.Models, serve.ModelConfig{
				Name: name, Engine: assembly.Engine, Store: assembly.QSL,
			})
			fmt.Printf("model %q: %s (%s)\n", name, assembly.Info.Name, assembly.Spec.Task)
		} else {
			cfg.Engine = assembly.Engine
			cfg.Store = assembly.QSL
			fmt.Printf("serving %s (%s)\n", assembly.Info.Name, assembly.Spec.Task)
		}
	}

	addrs, err := replicaAddrs(*addr, *replicas)
	if err != nil {
		fatal(err)
	}
	var metricsAddrs []string
	if *metrics != "" {
		if metricsAddrs, err = replicaAddrs(*metrics, *replicas); err != nil {
			fatal(err)
		}
	}
	var (
		servers  []*serve.Server
		managers []*capacity.Manager
	)
	for i := 0; i < *replicas; i++ {
		cfg := cfg
		cfg.Addr = addrs[i]
		if metricsAddrs != nil {
			cfg.MetricsAddr = metricsAddrs[i]
		}
		srv, err := serve.New(cfg)
		if err != nil {
			fatal(err)
		}
		// Apply the sizing flags through the live-reconfig path (recorded as
		// resize events; a zero flag leaves the derived default in place).
		if _, err := srv.Resize("", serve.ResizeRequest{
			Workers: *workers, QueueDepth: *queue, MaxBatch: *maxBatch,
			Reason: "startup-flag",
		}); err != nil {
			fatal(err)
		}
		if *autosize {
			m := capacity.NewManager(srv, capacity.Config{
				Interval: 250 * time.Millisecond,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "replica %d "+format+"\n", append([]any{i}, args...)...)
				},
			})
			managers = append(managers, m)
			srv.OnScrape(m.WritePrometheus)
		}
		servers = append(servers, srv)
		fmt.Printf("replica %d listening on %s\n", i, srv.Addr())
		if ma := srv.MetricsAddr(); ma != "" {
			fmt.Printf("replica %d metrics on http://%s/metrics\n", i, ma)
		}
	}
	if *autosize {
		env := capacity.DetectEnv()
		fmt.Printf("capacity: %s max-workers=%d\n", env.String(), env.MaxWorkersSuggestion())
	}
	started := servers[0].Metrics()
	fmt.Printf("replicas=%d models=%d workers=%d max-batch=%d queue=%d policy=%s batch-wait=%v\n",
		len(servers), len(servers[0].Models()), started.Workers, started.MaxBatch, started.QueueLimit, overload, *batchWait)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful drain: stop admitting (health probes answer "draining", so a
	// fault-tolerant client will not re-join these replicas), answer everything
	// already queued, and only then snapshot and tear down — the dumped metrics
	// cover every request the fleet ever admitted. A second signal skips the
	// drain and kills the fleet where it stands.
	fmt.Fprintln(os.Stderr, "mlperf-serve: draining (signal again to kill)")
	for _, m := range managers {
		m.Close()
	}
	done := make(chan struct{})
	go func() {
		for _, srv := range servers {
			srv.Drain()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-sig:
		for _, srv := range servers {
			srv.Kill()
		}
		fmt.Fprintln(os.Stderr, "mlperf-serve: killed before drain completed")
		os.Exit(1)
	}

	type labeledSnapshot struct {
		Replica int            `json:"replica"`
		Addr    string         `json:"addr"`
		Model   string         `json:"model,omitempty"`
		Metrics serve.Snapshot `json:"metrics"`
	}
	var dump []labeledSnapshot
	for i, srv := range servers {
		for _, model := range srv.Models() {
			snap, err := srv.ModelMetrics(model)
			if err != nil {
				continue
			}
			dump = append(dump, labeledSnapshot{Replica: i, Addr: srv.Addr(), Model: model, Metrics: snap})
		}
		if err := srv.Close(); err != nil {
			fatal(err)
		}
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nserving metrics:\n%s\n", out)

	// After the drain every admitted request has published its spans; dump
	// them once for the whole fleet.
	if *traceOut != "" && tracer != nil {
		if err := writeTraceFile(*traceOut, tracer.Records()); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}

// writeTraceFile dumps the captured spans as Chrome trace-event JSON.
func writeTraceFile(path string, records []trace.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// replicaAddrs expands a base listen address into one per replica: an
// explicit port increments per replica, port 0 stays kernel-assigned.
func replicaAddrs(base string, replicas int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("parsing -addr %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("parsing -addr port %q: %w", portStr, err)
	}
	addrs := make([]string, replicas)
	for i := range addrs {
		p := port
		if port != 0 {
			p = port + i
		}
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(p))
	}
	return addrs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlperf-serve:", err)
	os.Exit(1)
}
