// Package serve is the suite's network serving subsystem: a production-style
// inference server that exposes any model.Engine over a loopback TCP socket,
// so every LoadGen scenario can run across a real network boundary — with
// queueing, serialization and connection concurrency on the measured path —
// instead of an in-process function call.
//
// The server owns the three mechanisms that bound achieved QPS in a real
// datacenter submission (the phenomena the paper's Server scenario exists to
// measure):
//
//   - Admission control: a bounded FIFO queue with a configurable overload
//     policy. RejectNewest turns away arrivals when the queue is full;
//     ShedOldest drops the queue head (the request most likely to already be over
//     its deadline) to admit the newcomer. Either way the shed request is
//     answered immediately with StatusRejected — overload is reported, never
//     silent — and per-request deadlines expire queued requests before they
//     waste service time.
//
//   - Dynamic batching: queued requests coalesce into one batched
//     Engine.Predict call, up to MaxBatch within a BatchWait window, with
//     backend.Batching's end-of-series semantics (MsgFlush switches to
//     pass-through so stragglers are not held hostage by an armed timer;
//     MsgReopen re-arms for the next run).
//
//   - A worker pool: N workers drain batches concurrently through the
//     engine's pooled scratch-arena inference path, so service parallelism
//     and batch formation are decoupled.
//
// Observability is part of the contract: the server tracks queue depth, a
// dispatched-batch-size histogram, queue/service latency percentiles and
// reject/expire counts, served as a Snapshot over the wire (MsgMetrics) for
// the benchmark report.
//
// The LoadGen-facing client lives in backend.Remote, which implements
// loadgen.SUT over this package's protocol; see protocol.go for the wire
// format.
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/model"
)

// SampleStore provides samples by index. dataset.QSL satisfies it; it is
// declared here (structurally identical to backend.SampleStore) so the serve
// and backend packages stay dependency-free of each other in this direction.
type SampleStore interface {
	Get(index int) (*dataset.Sample, error)
}

// OverloadPolicy selects what admission control does when the queue is full.
type OverloadPolicy int

const (
	// RejectNewest answers the arriving request with StatusRejected and
	// leaves the queue untouched (classic tail drop).
	RejectNewest OverloadPolicy = iota
	// ShedOldest rejects the queue head — the request that has waited
	// longest and is most likely past saving — and admits the newcomer.
	ShedOldest
)

// String returns the policy's CLI name.
func (p OverloadPolicy) String() string {
	switch p {
	case RejectNewest:
		return "reject"
	case ShedOldest:
		return "shed-oldest"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a CLI policy name.
func ParsePolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "reject", "":
		return RejectNewest, nil
	case "shed-oldest":
		return ShedOldest, nil
	default:
		return 0, fmt.Errorf("serve: unknown overload policy %q (want reject or shed-oldest)", s)
	}
}

// Config configures a Server.
type Config struct {
	// Engine runs the inference; required.
	Engine model.Engine
	// Store resolves the sample indexes arriving over the wire; required.
	// Like the reference LoadGen's QSL, the data set is resident on the
	// serving side before the timed run.
	Store SampleStore
	// Addr is the listen address; it defaults to "127.0.0.1:0" (loopback,
	// kernel-assigned port — read the bound address back with Addr).
	Addr string
	// Workers is the inference worker count; it defaults to
	// runtime.GOMAXPROCS(0) floored at 2, matching backend.Native.
	Workers int
	// QueueDepth bounds the admission queue (default 1024). Arrivals beyond
	// it are shed according to Policy.
	QueueDepth int
	// Policy is the overload policy (default RejectNewest).
	Policy OverloadPolicy
	// MaxBatch caps a dispatched batch. It defaults to the engine's derived
	// micro-batch (model.BatchSizer) so dynamic batching feeds the batched
	// kernels exactly the size their cache residency was derived for, or 8
	// when the engine does not publish one.
	MaxBatch int
	// BatchWait is how long the dispatcher holds an under-full batch open
	// for stragglers (default 2ms). After an end-of-series flush it is
	// ignored (pass-through) until reopen.
	BatchWait time.Duration
}

func (c *Config) normalize() error {
	if c.Engine == nil {
		return fmt.Errorf("serve: config needs an Engine")
	}
	if c.Store == nil {
		return fmt.Errorf("serve: config needs a sample Store")
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.MaxBatch <= 0 {
		if bs, ok := c.Engine.(model.BatchSizer); ok {
			c.MaxBatch = bs.PreferredBatch()
		}
		if c.MaxBatch <= 0 {
			c.MaxBatch = 8
		}
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	return nil
}

// request is one admitted predict request flowing queue → batch → worker.
type request struct {
	id       uint64
	index    int
	deadline time.Time
	enqueued time.Time
	conn     *serverConn
}

// respWriteTimeout bounds every response write. A client that stops reading
// its socket (full kernel buffer) must not wedge a worker — after the
// deadline the write fails, the connection is closed (so its reader exits and
// later writes fail fast) and the worker moves on.
const respWriteTimeout = 10 * time.Second

// serverConn serializes response frames onto one accepted connection.
type serverConn struct {
	c   net.Conn
	wmu sync.Mutex
	w   *bufio.Writer
}

// writeFrame writes and flushes one frame; concurrent workers serialize here.
// A failed or timed-out write poisons the connection deliberately.
func (sc *serverConn) writeFrame(msgType byte, body []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.c.SetWriteDeadline(time.Now().Add(respWriteTimeout))
	err := writeFrame(sc.w, msgType, body)
	if err == nil {
		err = sc.w.Flush()
	}
	if err != nil {
		sc.c.Close()
		return err
	}
	return nil
}

// Server is a running inference server. New starts it listening; Close tears
// it down after draining admitted work.
type Server struct {
	cfg Config
	ln  net.Listener

	mu          sync.Mutex
	queue       []*request
	passthrough bool
	shutdown    bool
	conns       map[*serverConn]struct{}

	// notify wakes the dispatcher (capacity 1; a dropped signal is fine
	// because the dispatcher re-checks state whenever it holds a token).
	notify  chan struct{}
	batchCh chan []*request

	metrics    *serverMetrics
	acceptWG   sync.WaitGroup
	connWG     sync.WaitGroup
	dispatchWG sync.WaitGroup
	workWG     sync.WaitGroup
	closeOnce  sync.Once
	closeErr   error
}

// New validates the configuration, binds the listener and starts the accept
// loop, dispatcher and worker pool. The server is serving when New returns.
func New(cfg Config) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listening on %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		conns:   make(map[*serverConn]struct{}),
		notify:  make(chan struct{}, 1),
		batchCh: make(chan []*request, cfg.Workers),
		metrics: newServerMetrics(),
	}
	s.dispatchWG.Add(1)
	go s.dispatch()
	s.workWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.acceptWG.Add(1)
	go s.accept()
	return s, nil
}

// Addr returns the bound listen address (useful with the default ":0" port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Metrics returns a point-in-time snapshot of the serving metrics.
func (s *Server) Metrics() Snapshot {
	s.mu.Lock()
	depth := len(s.queue)
	s.mu.Unlock()
	return s.metrics.snapshot(depth, s.cfg.Workers, s.cfg.MaxBatch)
}

// Close stops accepting connections, drains every admitted request (each gets
// its response), then closes remaining connections. Safe to call repeatedly.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.ln.Close()
		s.mu.Lock()
		s.shutdown = true
		s.mu.Unlock()
		s.signal()
		s.dispatchWG.Wait() // drains the queue, then closes batchCh
		s.workWG.Wait()     // finishes in-flight batches (responses written)
		s.mu.Lock()
		for sc := range s.conns {
			sc.c.Close()
		}
		s.mu.Unlock()
		s.acceptWG.Wait()
		s.connWG.Wait()
	})
	return s.closeErr
}

// signal wakes the dispatcher without blocking.
func (s *Server) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// accept runs the listener loop.
func (s *Server) accept() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.serveConn(c)
		}()
	}
}

// serveConn reads frames off one connection until it closes or misbehaves.
func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	sc := &serverConn{c: c, w: bufio.NewWriter(c)}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()

	r := bufio.NewReader(c)
	for {
		msgType, body, err := readFrame(r)
		if err != nil {
			return // EOF, closed, or oversized frame
		}
		switch msgType {
		case MsgPredict:
			req, err := decodePredictRequest(body)
			if err != nil {
				return
			}
			s.admit(&request{id: req.ID, index: req.SampleIndex, deadline: req.Deadline, conn: sc})
		case MsgFlush:
			s.flushSeries()
		case MsgReopen:
			s.reopen()
		case MsgMetrics:
			id, _, err := decodeIDPrefix(body)
			if err != nil {
				return
			}
			data, err := json.Marshal(s.Metrics())
			if err != nil {
				return
			}
			_ = sc.writeFrame(MsgMetrics, encodeIDPrefix(id, data))
		default:
			return // unknown message: drop the connection
		}
	}
}

// admit applies admission control to one arriving request and wakes the
// dispatcher. The shed victim (if any) is answered outside the queue lock.
func (s *Server) admit(r *request) {
	r.enqueued = time.Now()
	var shed *request
	rejected := false
	s.mu.Lock()
	switch {
	case s.shutdown:
		rejected = true
	case len(s.queue) >= s.cfg.QueueDepth:
		if s.cfg.Policy == ShedOldest {
			shed = s.queue[0]
			s.queue = append(s.queue[1:], r)
		} else {
			rejected = true
		}
	default:
		s.queue = append(s.queue, r)
	}
	s.mu.Unlock()

	if rejected {
		s.metrics.addRejected()
		s.respond(r, StatusRejected, nil)
		return
	}
	s.metrics.addAdmitted()
	if shed != nil {
		s.metrics.addShed()
		s.respond(shed, StatusRejected, nil)
	}
	s.signal()
}

// flushSeries is the MsgFlush path: forward everything buffered now and stop
// holding batches open for stragglers (backend.Batching's end-of-series
// semantics).
func (s *Server) flushSeries() {
	s.mu.Lock()
	s.passthrough = true
	s.mu.Unlock()
	s.metrics.addFlush()
	s.signal()
}

// reopen re-arms batching for a new query series.
func (s *Server) reopen() {
	s.mu.Lock()
	s.passthrough = false
	s.mu.Unlock()
}

// dispatch forms batches from the admission queue and hands them to the
// worker pool. An under-full batch is held open up to BatchWait from its
// oldest request's arrival unless pass-through or shutdown forces it out.
func (s *Server) dispatch() {
	defer s.dispatchWG.Done()
	defer close(s.batchCh)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 {
			if s.shutdown {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			<-s.notify
			s.mu.Lock()
		}
		if !(s.passthrough || s.shutdown || len(s.queue) >= s.cfg.MaxBatch) {
			deadline := s.queue[0].enqueued.Add(s.cfg.BatchWait)
			s.mu.Unlock()
			s.waitForBatch(deadline)
			s.mu.Lock()
		}
		batch := s.takeLocked()
		s.mu.Unlock()
		if len(batch) > 0 {
			s.batchCh <- batch
		}
	}
}

// waitForBatch sleeps until the batch window closes: the queue fills to
// MaxBatch, pass-through/shutdown is flagged, or the deadline passes.
func (s *Server) waitForBatch(deadline time.Time) {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			return
		case <-s.notify:
			s.mu.Lock()
			done := s.passthrough || s.shutdown || len(s.queue) >= s.cfg.MaxBatch
			s.mu.Unlock()
			if done {
				return
			}
		}
	}
}

// takeLocked pops up to MaxBatch requests from the queue head. Caller holds
// s.mu.
func (s *Server) takeLocked() []*request {
	n := len(s.queue)
	if n > s.cfg.MaxBatch {
		n = s.cfg.MaxBatch
	}
	batch := make([]*request, n)
	copy(batch, s.queue[:n])
	s.queue = s.queue[n:]
	if len(s.queue) == 0 {
		s.queue = nil // release the backing array between bursts
	}
	return batch
}

// worker drains batches until the dispatcher closes the channel.
func (s *Server) worker() {
	defer s.workWG.Done()
	for batch := range s.batchCh {
		s.runBatch(batch)
	}
}

// runBatch expires stale requests, resolves the survivors' samples and runs
// them through the engine as one batched Predict on the pooled scratch-arena
// path, answering each request on its own connection.
func (s *Server) runBatch(batch []*request) {
	started := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && started.After(r.deadline) {
			s.metrics.addExpired(1)
			s.respond(r, StatusExpired, nil)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	s.metrics.observeBatch(len(live))

	samples := make([]*dataset.Sample, 0, len(live))
	reqs := make([]*request, 0, len(live))
	for _, r := range live {
		sample, err := s.cfg.Store.Get(r.index)
		if err != nil {
			s.metrics.addErrored()
			s.respond(r, StatusError, nil)
			continue
		}
		samples = append(samples, sample)
		reqs = append(reqs, r)
	}
	if len(samples) == 0 {
		return
	}

	outputs, err := s.cfg.Engine.Predict(samples, nil)
	if err != nil || len(outputs) != len(samples) {
		// One bad sample poisons a whole batched Predict; retry sample by
		// sample so errors stay isolated (mirrors backend.Native).
		for i, r := range reqs {
			s.predictOne(r, samples[i], started)
		}
		return
	}
	for i, r := range reqs {
		s.finish(r, outputs[i], started)
	}
}

// predictOne is the per-sample isolation fallback after a failed batch.
func (s *Server) predictOne(r *request, sample *dataset.Sample, started time.Time) {
	outputs, err := s.cfg.Engine.Predict([]*dataset.Sample{sample}, nil)
	if err != nil || len(outputs) != 1 {
		s.metrics.addErrored()
		s.respond(r, StatusError, nil)
		return
	}
	s.finish(r, outputs[0], started)
}

// finish encodes one prediction, records latencies and answers the request.
// Metrics are recorded BEFORE the response is written so a snapshot taken by
// a client that has seen all its responses is consistent (Completed covers
// them); service time therefore excludes the buffered loopback write.
func (s *Server) finish(r *request, out model.Output, started time.Time) {
	data, err := out.Encode()
	if err != nil {
		s.metrics.addErrored()
		s.respond(r, StatusError, nil)
		return
	}
	s.metrics.observeService(started.Sub(r.enqueued), time.Since(started))
	s.respond(r, StatusOK, data)
}

// respond writes one predict response; a write error means the client has
// gone away, which does not concern the serving loop.
func (s *Server) respond(r *request, status Status, data []byte) {
	_ = r.conn.writeFrame(MsgPredict, encodePredictResponse(r.id, status, data))
}
