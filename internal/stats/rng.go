package stats

import "math"

// RNG is a small, deterministic, seedable pseudo-random number generator.
// The benchmark requires all query traffic to be reproducible from seeds in
// the test settings (Section IV-A prohibits optimizations that exploit the
// fixed seed, and the alternate-random-seed audit swaps it); keeping the
// generator in-repo guarantees identical traffic across Go releases, unlike
// math/rand whose stream is not covered by the compatibility promise.
//
// The core generator is xoshiro256**, seeded through splitmix64.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given 64-bit seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A xoshiro state of all zeros is invalid; splitmix64 cannot produce it
	// for all four words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normally distributed value using the
// Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of the integers [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns a new generator whose stream is derived from, but independent
// of, this generator. It is used to hand sub-streams to concurrent actors
// (e.g. per-stream query generation in the multistream scenario) without
// sharing mutable state.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a5a5a5a5a5)
}
