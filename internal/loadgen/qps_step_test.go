package loadgen

import (
	"testing"
	"time"
)

func stepSettings(seed uint64) TestSettings {
	s := DefaultSettings(Server)
	s.MinQueryCount = 1
	s.MinDuration = 200 * time.Millisecond
	s.ServerTargetQPS = 200
	s.ServerQPSStepAfter = 100 * time.Millisecond
	s.ServerQPSStepTo = 2000
	s.ServerTargetLatency = 100 * time.Millisecond
	s.ScheduleSeed = seed
	return s
}

// TestServerQPSStepRaisesOfferedLoad: a mid-run rate step must actually
// change the arrival schedule — the run issues far more queries than the flat
// starting rate could have scheduled in the same window.
func TestServerQPSStepRaisesOfferedLoad(t *testing.T) {
	qsl := newFakeQSL(64, 64)
	sut := newFakeSUT(0, true)
	res, err := StartTest(sut, qsl, stepSettings(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("stepped run invalid with an instant SUT: %v", res.ValidityMessages)
	}
	// Flat 200 QPS over 200ms schedules ~40 arrivals; the step to 2000 QPS at
	// 100ms makes the expectation ~220. Anything over 100 proves the step took.
	if res.QueriesIssued < 100 {
		t.Fatalf("issued %d queries, want the stepped schedule (~220 expected, ~40 without the step)", res.QueriesIssued)
	}
	if res.ServerScheduledQPS != 200 {
		t.Errorf("ServerScheduledQPS = %v, want the starting rate 200", res.ServerScheduledQPS)
	}
}

// TestServerQPSStepDeterministic: the same schedule seed reproduces the same
// stepped arrival schedule, gap for gap — and the gaps actually shrink once
// the schedule crosses the step. (The issued-query count of a live run is
// bounded by wall clock, so determinism is pinned on the schedule itself.)
func TestServerQPSStepDeterministic(t *testing.T) {
	const draws = 1000
	schedules := make([][]time.Duration, 2)
	for i := range schedules {
		next, err := steppedGaps(stepSettings(11))
		if err != nil {
			t.Fatal(err)
		}
		var offset time.Duration
		for j := 0; j < draws; j++ {
			gap, err := next(offset)
			if err != nil {
				t.Fatal(err)
			}
			offset += gap
			schedules[i] = append(schedules[i], offset)
		}
	}
	for j := range schedules[0] {
		if schedules[0][j] != schedules[1][j] {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", j, schedules[0][j], schedules[1][j])
		}
	}

	// Mean gap before the 100ms step should track 1/200 QPS (5ms), after it
	// 1/2000 QPS (0.5ms): the post-step arrivals must be much denser.
	stepAt := stepSettings(11).ServerQPSStepAfter
	var before, after time.Duration
	var nBefore, nAfter int
	prev := time.Duration(0)
	for _, at := range schedules[0] {
		if at < stepAt {
			before += at - prev
			nBefore++
		} else if prev >= stepAt {
			after += at - prev
			nAfter++
		}
		prev = at
	}
	if nBefore == 0 || nAfter == 0 {
		t.Fatalf("schedule never crossed the step: %d before, %d after", nBefore, nAfter)
	}
	meanBefore := before / time.Duration(nBefore)
	meanAfter := after / time.Duration(nAfter)
	if meanAfter*2 >= meanBefore {
		t.Fatalf("post-step gaps did not shrink: mean %v before vs %v after", meanBefore, meanAfter)
	}
}

// TestServerQPSStepValidation pins the settings rules.
func TestServerQPSStepValidation(t *testing.T) {
	qsl := newFakeQSL(8, 8)
	sut := newFakeSUT(0, true)

	s := stepSettings(1)
	s.ServerQPSStepTo = 0
	if _, err := StartTest(sut, qsl, s); err == nil {
		t.Error("StepAfter without StepTo: expected error")
	}

	s = stepSettings(1)
	s.ServerQPSStepAfter = -time.Second
	if _, err := StartTest(sut, qsl, s); err == nil {
		t.Error("negative StepAfter: expected error")
	}
}
