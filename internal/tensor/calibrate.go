package tensor

import (
	"time"

	"mlperf/internal/parallel"
)

// Knob auto-calibration. The two scheduling knobs — ParallelFlopThreshold and
// GEMMPanelBytes — ship with defaults tuned on one reference core. Calibrate
// measures this machine instead: single-core GEMM throughput through the
// active kernel tier, the worker pool's fork/join overhead, and the L2 size,
// then derives knob values from the measurements. The derivation is pure
// scheduling — neither knob changes results — so applying a calibration is
// always numerically safe, and the whole pass costs a few tens of
// milliseconds at startup.

// Calibration holds the measured machine characteristics and the knob values
// derived from them. Zero-valued measurement fields mean "measurement
// unavailable" (e.g. L2Bytes outside Linux); the derived knobs then fall back
// to the shipped defaults.
type Calibration struct {
	// SIMD is the dispatch tier the throughput was measured under.
	SIMD string `json:"simd"`
	// Workers is the shared pool's worker count.
	Workers int `json:"workers"`
	// MACRate is the measured single-core GEMM rate in multiply-accumulates
	// per second on a cache-resident shape.
	MACRate float64 `json:"mac_rate"`
	// ForkOverhead is the measured cost of one parallel.For dispatch across
	// the pool (zero on single-worker hosts, where For runs inline).
	ForkOverhead time.Duration `json:"fork_overhead_ns"`
	// L2Bytes is the probed per-core L2 size (0 if unavailable).
	L2Bytes int `json:"l2_bytes"`
	// FlopThreshold is the derived ParallelFlopThreshold value.
	FlopThreshold int `json:"flop_threshold"`
	// PanelBytes is the derived GEMMPanelBytes value.
	PanelBytes int `json:"panel_bytes"`
}

// Derived-knob clamps. The threshold floor keeps trivially small GEMMs
// inline even on machines measuring implausibly cheap forks; the ceiling
// keeps genuinely large GEMMs parallel even when a noisy measurement inflates
// the fork cost. The panel clamps mirror the budget's job: a panel below the
// floor thrashes the 4-row kernel's B reuse, one above the ceiling stops
// being cache-resident on any realistic L2.
const (
	calMinFlopThreshold = 1 << 16
	calMaxFlopThreshold = 1 << 26
	calMinPanelBytes    = 64 << 10
	calMaxPanelBytes    = 2 << 20
)

// calibrationL2Dir is the sysfs directory Calibrate probes (a var so tests
// can point it at a fixture).
var calibrationL2Dir = "/sys/devices/system/cpu/cpu0/cache"

// Calibrate measures this machine and derives tuning-knob values. It does not
// change any knob; call Apply on the result to install the derived values.
func Calibrate() Calibration {
	c := Calibration{
		SIMD:    ActiveSIMD().String(),
		Workers: parallel.Default().Workers(),
		L2Bytes: ProbeL2CacheBytes(calibrationL2Dir),
	}
	c.MACRate = measureMACRate()
	c.ForkOverhead = measureForkOverhead(c.Workers)

	// The parallel threshold is the workload size where splitting starts to
	// win: parallel.For costs one fork, and with W workers a workload of T
	// MACs saves T·(1−1/W)/rate seconds of wall clock. Requiring the saving
	// to be ~4× the fork cost (not merely equal) keeps borderline GEMMs
	// inline, where they also avoid polluting sibling workers' caches.
	c.FlopThreshold = defaultParallelFlopThreshold
	if c.MACRate > 0 && c.Workers > 1 && c.ForkOverhead > 0 {
		saveFrac := 1 - 1/float64(c.Workers)
		t := c.MACRate * c.ForkOverhead.Seconds() * 4 / saveFrac
		c.FlopThreshold = clampInt(int(t), calMinFlopThreshold, calMaxFlopThreshold)
	} else if c.Workers <= 1 {
		// A single worker never forks; park the threshold at the ceiling so
		// the inline path is taken without consulting the pool.
		c.FlopThreshold = calMaxFlopThreshold
	}

	// The panel budget is the L2 share one streamed B panel may occupy: 3/4
	// of the measured L2, leaving headroom for the four accumulator rows and
	// the A strips walking through alongside it.
	c.PanelBytes = defaultGEMMPanelBytes
	if c.L2Bytes > 0 {
		c.PanelBytes = clampInt(c.L2Bytes*3/4, calMinPanelBytes, calMaxPanelBytes)
	}
	return c
}

// Apply installs the calibration's derived knob values and marks the process
// configuration as calibrated (reported via CurrentKernelConfig and the serve
// snapshots).
func (c Calibration) Apply() {
	SetParallelFlopThreshold(c.FlopThreshold)
	SetGEMMPanelBytes(c.PanelBytes)
	calibratedV.Store(true)
}

// measureMACRate times the blocked GEMM kernel single-threaded on a
// cache-resident 64×64×64 shape until ~5ms have elapsed, returning
// multiply-accumulates per second under the active SIMD tier.
func measureMACRate() float64 {
	const dim = 64
	const macsPerRun = dim * dim * dim
	a := make([]float32, dim*dim)
	b := make([]float32, dim*dim)
	c := make([]float32, dim*dim)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range a {
		x = x*2862933555777941757 + 3037000493
		a[i] = float32(int32(x>>33)) / (1 << 30)
		b[i] = float32(int32(x>>13)) / (1 << 30)
	}
	// Warm the caches and the dispatch path once before timing.
	gemmRows(c, a, b, nil, dim, dim, 0, dim)
	runs := 0
	start := time.Now()
	for time.Since(start) < 5*time.Millisecond {
		gemmRows(c, a, b, nil, dim, dim, 0, dim)
		runs++
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 || runs == 0 {
		return 0
	}
	return float64(runs) * macsPerRun / elapsed
}

// measureForkOverhead times empty parallel.For dispatches across the pool.
// With one worker For runs inline and the overhead is, by construction, zero.
func measureForkOverhead(workers int) time.Duration {
	if workers <= 1 {
		return 0
	}
	// Warm up the pool's goroutines so the measurement sees steady-state
	// handoff, not first-wake costs.
	for i := 0; i < 8; i++ {
		parallel.For(workers, 1, func(lo, hi int) {})
	}
	const rounds = 64
	start := time.Now()
	for i := 0; i < rounds; i++ {
		parallel.For(workers, 1, func(lo, hi int) {})
	}
	return time.Since(start) / rounds
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
