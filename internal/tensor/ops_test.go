package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatMul(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Errorf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	a := MustNew(2, 3)
	b := MustNew(4, 2)
	if _, err := MatMul(a, b); err == nil {
		t.Error("inner-dimension mismatch: expected error")
	}
	if _, err := MatMul(MustNew(2), b); err == nil {
		t.Error("rank mismatch: expected error")
	}
}

func TestMatVec(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	x, _ := FromSlice([]float32{5, 6}, 2)
	y, err := MatVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 17 || y.At(1) != 39 {
		t.Errorf("MatVec = %v", y.Data())
	}
	if _, err := MatVec(a, MustNew(3)); err == nil {
		t.Error("dimension mismatch: expected error")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	input, _ := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	kernel, _ := FromSlice([]float32{1}, 1, 1, 1, 1)
	out, err := Conv2D(input, kernel, nil, Conv2DOptions{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !Equalish(out, input, 0) {
		t.Errorf("1x1 identity convolution changed the input: %v", out.Data())
	}
}

func TestConv2DKnownValues(t *testing.T) {
	input, _ := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	// 2x2 sum kernel, stride 1, no padding -> 2x2 output of window sums.
	kernel, _ := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	bias, _ := FromSlice([]float32{10}, 1)
	out, err := Conv2D(input, kernel, bias, Conv2DOptions{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1 + 2 + 4 + 5 + 10, 2 + 3 + 5 + 6 + 10, 4 + 5 + 7 + 8 + 10, 5 + 6 + 8 + 9 + 10}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("conv[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	input := MustNew(1, 4, 4)
	input.Fill(1)
	kernel := MustNew(2, 1, 3, 3)
	kernel.Fill(1)
	out, err := Conv2D(input, kernel, nil, Conv2DOptions{Stride: 2, Padding: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Shape()
	if s[0] != 2 || s[1] != 2 || s[2] != 2 {
		t.Fatalf("output shape = %v, want [2 2 2]", s)
	}
	// Top-left window with padding 1 covers 2x2 of ones = 4.
	if out.At(0, 0, 0) != 4 {
		t.Errorf("padded corner = %v, want 4", out.At(0, 0, 0))
	}
}

func TestConv2DErrors(t *testing.T) {
	input := MustNew(2, 4, 4)
	kernel := MustNew(1, 3, 3, 3) // channel mismatch
	if _, err := Conv2D(input, kernel, nil, Conv2DOptions{Stride: 1}); err == nil {
		t.Error("channel mismatch: expected error")
	}
	if _, err := Conv2D(input, MustNew(1, 2, 3, 3), nil, Conv2DOptions{Stride: 0}); err == nil {
		t.Error("zero stride: expected error")
	}
	if _, err := Conv2D(input, MustNew(1, 2, 9, 9), nil, Conv2DOptions{Stride: 1}); err == nil {
		t.Error("kernel larger than input: expected error")
	}
}

func TestDepthwiseConv2D(t *testing.T) {
	input, _ := FromSlice([]float32{
		1, 2,
		3, 4,

		10, 20,
		30, 40,
	}, 2, 2, 2)
	kernels, _ := FromSlice([]float32{
		1, 1, 1, 1,
		2, 2, 2, 2,
	}, 2, 2, 2)
	out, err := DepthwiseConv2D(input, kernels, nil, Conv2DOptions{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0) != 10 {
		t.Errorf("channel 0 = %v, want 10", out.At(0, 0, 0))
	}
	if out.At(1, 0, 0) != 200 {
		t.Errorf("channel 1 = %v, want 200", out.At(1, 0, 0))
	}
}

func TestDepthwiseConv2DErrors(t *testing.T) {
	if _, err := DepthwiseConv2D(MustNew(2, 4, 4), MustNew(3, 3, 3), nil, Conv2DOptions{Stride: 1}); err == nil {
		t.Error("channel mismatch: expected error")
	}
}

func TestMaxPool2D(t *testing.T) {
	input, _ := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 4, 4)
	out, err := MaxPool2D(input, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 8, 12, 16}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Errorf("maxpool[%d] = %v, want %v", i, out.Data()[i], w)
		}
	}
	if _, err := MaxPool2D(MustNew(1, 2, 2), 0, 1); err == nil {
		t.Error("zero window: expected error")
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	input, _ := FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 2, 2, 2)
	out, err := GlobalAvgPool2D(input)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0) != 2.5 || out.At(1) != 25 {
		t.Errorf("global avg pool = %v", out.Data())
	}
}

func TestActivations(t *testing.T) {
	x, _ := FromSlice([]float32{-2, 0, 3, 8}, 4)
	ReLU(x)
	if x.At(0) != 0 || x.At(3) != 8 {
		t.Errorf("ReLU = %v", x.Data())
	}
	y, _ := FromSlice([]float32{-2, 0, 3, 8}, 4)
	ReLU6(y)
	if y.At(0) != 0 || y.At(3) != 6 {
		t.Errorf("ReLU6 = %v", y.Data())
	}
	z, _ := FromSlice([]float32{0}, 1)
	Sigmoid(z)
	if math.Abs(float64(z.At(0))-0.5) > 1e-6 {
		t.Errorf("Sigmoid(0) = %v", z.At(0))
	}
	w, _ := FromSlice([]float32{0}, 1)
	Tanh(w)
	if w.At(0) != 0 {
		t.Errorf("Tanh(0) = %v", w.At(0))
	}
}

func TestSoftmax(t *testing.T) {
	x, _ := FromSlice([]float32{1, 2, 3}, 3)
	s, err := Softmax(x)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range s.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("softmax value out of range: %v", v)
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Errorf("softmax sums to %v", sum)
	}
	if s.ArgMax() != 2 {
		t.Errorf("softmax argmax = %d", s.ArgMax())
	}
	if _, err := Softmax(MustNew(2, 2)); err == nil {
		t.Error("rank-2 softmax: expected error")
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	x, _ := FromSlice([]float32{1000, 1001, 1002}, 3)
	s, err := Softmax(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax not numerically stable: %v", s.Data())
		}
	}
}

func TestScaleShift(t *testing.T) {
	x, _ := FromSlice([]float32{1, 1, 1, 1, 2, 2, 2, 2}, 2, 2, 2)
	scale, _ := FromSlice([]float32{2, 3}, 2)
	shift, _ := FromSlice([]float32{1, -1}, 2)
	if err := ScaleShift(x, scale, shift); err != nil {
		t.Fatal(err)
	}
	if x.At(0, 0, 0) != 3 || x.At(1, 1, 1) != 5 {
		t.Errorf("ScaleShift = %v", x.Data())
	}
	if err := ScaleShift(x, MustNew(3), shift); err == nil {
		t.Error("channel mismatch: expected error")
	}
}

func TestConcat(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2}, 2)
	b, _ := FromSlice([]float32{3}, 1)
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.At(2) != 3 {
		t.Errorf("Concat = %v", c.Data())
	}
	if _, err := Concat(); err == nil {
		t.Error("empty concat: expected error")
	}
	if _, err := Concat(MustNew(2, 2)); err == nil {
		t.Error("rank-2 concat: expected error")
	}
}

// Property: convolution is linear in its input — conv(a*x) == a*conv(x).
func TestConv2DLinearityProperty(t *testing.T) {
	f := func(seedVals []float32, scaleRaw uint8) bool {
		if len(seedVals) < 9 {
			return true
		}
		scale := 1 + float32(scaleRaw%5)
		in := MustNew(1, 3, 3)
		for i := 0; i < 9; i++ {
			v := seedVals[i]
			if v != v || v > 1e6 || v < -1e6 { // skip NaN / huge
				return true
			}
			in.Data()[i] = v
		}
		kernel, _ := FromSlice([]float32{1, 0, -1, 2}, 1, 1, 2, 2)
		out1, err := Conv2D(in, kernel, nil, Conv2DOptions{Stride: 1})
		if err != nil {
			return false
		}
		scaled := in.Clone()
		scaled.Scale(scale)
		out2, err := Conv2D(scaled, kernel, nil, Conv2DOptions{Stride: 1})
		if err != nil {
			return false
		}
		expected := out1.Clone()
		expected.Scale(scale)
		return Equalish(out2, expected, 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
