// Package audit implements the result-review validation suite of
// Section V-B: the experiments peer reviewers run against a submission to
// detect rule violations that are otherwise hard to spot in closed-source
// inference stacks — inaccurate results in performance mode, query/result
// caching, and optimizations tuned to the official random seed.
package audit

import (
	"fmt"

	"mlperf/internal/accuracy"
	"mlperf/internal/loadgen"
)

// Finding is the outcome of one audit test.
type Finding struct {
	// Name identifies the audit test ("accuracy-verification",
	// "caching-detection", "alternate-random-seed").
	Name string
	// Pass is true when no violation was detected.
	Pass bool
	// Detail explains the measurement behind the verdict.
	Detail string
}

// String formats the finding for review reports.
func (f Finding) String() string {
	status := "FAIL"
	if f.Pass {
		status = "PASS"
	}
	return fmt.Sprintf("[%s] %s: %s", status, f.Name, f.Detail)
}

// Suite bundles the SUT/QSL pair under review with the base settings the
// audit runs derive from. The settings should be the (possibly scaled)
// performance settings the submission used.
type Suite struct {
	SUT      loadgen.SUT
	QSL      loadgen.QuerySampleLibrary
	Settings loadgen.TestSettings
}

// validate checks the suite is runnable.
func (s Suite) validate() error {
	if s.SUT == nil {
		return loadgen.ErrNilSUT
	}
	if s.QSL == nil {
		return loadgen.ErrNilQSL
	}
	return s.Settings.Validate()
}

// AccuracyVerification reruns the SUT in performance mode with random
// response logging enabled and checks the sampled responses against a full
// accuracy-mode run ("the log is checked against the log generated in
// accuracy mode to ensure consistency").
func (s Suite) AccuracyVerification() (Finding, error) {
	if err := s.validate(); err != nil {
		return Finding{}, err
	}
	perfSettings := s.Settings
	perfSettings.Mode = loadgen.PerformanceMode
	if perfSettings.AccuracyLogSamplingRate <= 0 {
		perfSettings.AccuracyLogSamplingRate = 0.10
	}
	perf, err := loadgen.StartTest(s.SUT, s.QSL, perfSettings)
	if err != nil {
		return Finding{}, fmt.Errorf("audit: accuracy-verification performance run: %w", err)
	}
	accSettings := s.Settings
	accSettings.Mode = loadgen.AccuracyMode
	acc, err := loadgen.StartTest(s.SUT, s.QSL, accSettings)
	if err != nil {
		return Finding{}, fmt.Errorf("audit: accuracy-verification accuracy run: %w", err)
	}
	compared, err := accuracy.VerifyConsistency(perf.AccuracyLog, acc.AccuracyLog)
	if err != nil {
		return Finding{
			Name: "accuracy-verification", Pass: false,
			Detail: fmt.Sprintf("mismatch after %d comparisons: %v", compared, err),
		}, nil
	}
	return Finding{
		Name: "accuracy-verification", Pass: true,
		Detail: fmt.Sprintf("%d sampled performance-mode responses match the accuracy run", compared),
	}, nil
}

// CachingDetection issues queries with unique sample indices and then with
// duplicate sample indices and compares performance; a system that answers
// duplicates significantly faster is caching inference results, which the
// rules prohibit. speedupThreshold is the allowed ratio (e.g. 1.25 flags
// systems that are more than 25% faster on duplicates).
func (s Suite) CachingDetection(speedupThreshold float64) (Finding, error) {
	if err := s.validate(); err != nil {
		return Finding{}, err
	}
	if speedupThreshold <= 1 {
		return Finding{}, fmt.Errorf("audit: speedup threshold must exceed 1, got %v", speedupThreshold)
	}
	unique := s.Settings
	unique.Mode = loadgen.PerformanceMode
	unique.SampleIndexPolicy = loadgen.UniqueSweep
	uniqueRes, err := loadgen.StartTest(s.SUT, s.QSL, unique)
	if err != nil {
		return Finding{}, fmt.Errorf("audit: caching-detection unique run: %w", err)
	}
	duplicate := unique
	duplicate.SampleIndexPolicy = loadgen.DuplicateSingle
	dupRes, err := loadgen.StartTest(s.SUT, s.QSL, duplicate)
	if err != nil {
		return Finding{}, fmt.Errorf("audit: caching-detection duplicate run: %w", err)
	}
	// Median latency is used rather than the mean so a few scheduler-induced
	// stragglers in either run do not swing the comparison.
	uniqueMedian := uniqueRes.QueryLatencies.P50
	dupMedian := dupRes.QueryLatencies.P50
	if uniqueMedian <= 0 || dupMedian <= 0 {
		return Finding{}, fmt.Errorf("audit: caching-detection produced empty latency summaries")
	}
	speedup := float64(uniqueMedian) / float64(dupMedian)
	detail := fmt.Sprintf("unique-sample median latency %v, duplicate-sample median latency %v (speedup %.2fx, threshold %.2fx)",
		uniqueMedian, dupMedian, speedup, speedupThreshold)
	return Finding{Name: "caching-detection", Pass: speedup <= speedupThreshold, Detail: detail}, nil
}

// AlternateSeed replaces the official random seeds with alternates and checks
// that performance stays within tolerance (a fractional change, e.g. 0.2 for
// ±20%); larger swings indicate an optimization tuned to the official seed.
func (s Suite) AlternateSeed(alternateSeeds []uint64, tolerance float64) (Finding, error) {
	if err := s.validate(); err != nil {
		return Finding{}, err
	}
	if len(alternateSeeds) == 0 {
		return Finding{}, fmt.Errorf("audit: no alternate seeds supplied")
	}
	if tolerance <= 0 {
		return Finding{}, fmt.Errorf("audit: tolerance must be positive, got %v", tolerance)
	}
	official := s.Settings
	official.Mode = loadgen.PerformanceMode
	officialRes, err := loadgen.StartTest(s.SUT, s.QSL, official)
	if err != nil {
		return Finding{}, fmt.Errorf("audit: alternate-seed official run: %w", err)
	}
	officialMetric := metricFor(officialRes)
	if officialMetric <= 0 {
		return Finding{}, fmt.Errorf("audit: official run produced no usable metric")
	}
	for _, seed := range alternateSeeds {
		alt := official
		alt.QuerySeed = seed
		alt.ScheduleSeed = seed ^ 0xabcdef
		altRes, err := loadgen.StartTest(s.SUT, s.QSL, alt)
		if err != nil {
			return Finding{}, fmt.Errorf("audit: alternate-seed run with seed %d: %w", seed, err)
		}
		altMetric := metricFor(altRes)
		change := relativeChange(officialMetric, altMetric)
		if change > tolerance {
			return Finding{
				Name: "alternate-random-seed", Pass: false,
				Detail: fmt.Sprintf("seed %#x shifted the metric by %.1f%% (official %.4g, alternate %.4g, tolerance %.0f%%)",
					seed, 100*change, officialMetric, altMetric, 100*tolerance),
			}, nil
		}
	}
	return Finding{
		Name: "alternate-random-seed", Pass: true,
		Detail: fmt.Sprintf("metric stable within %.0f%% across %d alternate seeds", 100*tolerance, len(alternateSeeds)),
	}, nil
}

// metricFor extracts a positive "bigger change = more suspicious" metric from
// a result: mean per-query latency for latency scenarios, throughput for the
// rest.
func metricFor(r *loadgen.Result) float64 {
	switch r.Scenario {
	case loadgen.SingleStream, loadgen.MultiStream:
		// Median rather than mean: robust against a handful of
		// scheduler-induced stragglers.
		return float64(r.QueryLatencies.P50)
	case loadgen.Server:
		return r.ServerAchievedQPS
	case loadgen.Offline:
		return r.OfflineSamplesPerSec
	default:
		return 0
	}
}

func relativeChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	return diff / a
}

// RunAll executes the full audit battery with default thresholds and returns
// every finding.
func (s Suite) RunAll() ([]Finding, error) {
	findings := make([]Finding, 0, 3)
	f1, err := s.AccuracyVerification()
	if err != nil {
		return nil, err
	}
	findings = append(findings, f1)
	// Repeated samples are legitimately somewhat faster on real systems
	// (memory-hierarchy locality), so the default threshold only flags
	// dramatic speedups that indicate result caching.
	f2, err := s.CachingDetection(2.0)
	if err != nil {
		return nil, err
	}
	findings = append(findings, f2)
	// Wall-clock measurements on a shared machine are noisy; the default
	// tolerance only flags swings far larger than run-to-run variation.
	f3, err := s.AlternateSeed([]uint64{0x1d872fa3, 0x7ac0ffee}, 1.0)
	if err != nil {
		return nil, err
	}
	findings = append(findings, f3)
	return findings, nil
}

// AllPassed reports whether every finding passed.
func AllPassed(findings []Finding) bool {
	for _, f := range findings {
		if !f.Pass {
			return false
		}
	}
	return len(findings) > 0
}
