#!/usr/bin/env bash
# bench.sh — kernel/native/batched/serving micro-benchmark gate.
#
# Gates the tree with `go vet` and `go test -race`, then runs the
# compute-kernel, native-classifier, batch-first Engine and network-serving
# benchmarks (serial reference vs blocked/parallel engine, heap vs
# scratch-arena inference, batched Predict vs the per-sample loop at batch
# 1/8/32 for the CNN and recurrent engines, the weight-streaming wide
# classifier, the offline classification/translation scenarios end to end,
# the loopback serving comparison: Server + Offline through an in-process
# backend.Native vs over-the-wire through serve.Server + backend.Remote with
# the queue/service latency breakdown, the sharded-serving comparison:
# Server + Offline against 1 vs 2 loopback replicas with the per-replica
# completion/latency breakdown, the recovery benchmark: an Offline run
# through a 2-replica fleet with one replica killed and restarted mid-run,
# reporting the faulted run's throughput and the down-to-rejoin latency, and
# the autoscale benchmark: the same Offline stream against a 1-worker pool
# with startup limits frozen vs under a live capacity manager, reporting both
# throughputs plus the managed pool's final workers and resize decisions, and
# the SIMD GEMM tier sweep: the same cache-resident and streaming GEMMs under
# every dispatch tier this CPU supports — forced-scalar, avx2, fma — with
# GFLOP/s per tier and the scalar-to-SIMD speedups derived, and the tracing
# overhead benchmark: the same Server-scenario wire run untraced vs span-
# sampled at 1/64 on both ends, with the overhead ratio derived, and the
# swarm benchmarks: the Swarm scenario — hundreds of churning client
# sessions — end to end over a loopback deployment with its aggregate QPS
# and churn count, plus the steady-state wire microbenchmark whose 0
# allocs/op pins the binary-codec + pooled-buffer zero-allocation claim)
# and writes
# the aggregated numbers to a JSON file (default BENCH_PR10.json) so speedups
# and serving overheads are recorded in the repository alongside the code
# they measure. The JSON also records which SIMD tier runtime dispatch
# actually picked on this machine (simd_dispatch).
#
# Usage: scripts/bench.sh            # 5 runs per benchmark -> BENCH_PR10.json
#        COUNT=10 OUT=out.json scripts/bench.sh
#        SKIP_RACE=1 scripts/bench.sh   # skip the race-detector gate
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_PR10.json}"

go vet ./...
if [ -z "${SKIP_RACE:-}" ]; then
    go test -race ./...
fi

# What tier does runtime dispatch choose here? (TestLogActiveSIMD logs the
# active and highest-supported tiers; -count=1 defeats the test cache so the
# probe reflects this run's environment, MLPERF_SIMD override included.)
simd_dispatch="$(go test -count=1 -run '^TestLogActiveSIMD$' -v ./internal/tensor \
    | awk '/simd-tier:/ { print $NF; exit }')"
echo "simd dispatch tier: ${simd_dispatch}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
    -bench 'Kernel|NativeClassifier|BatchedPredict|OfflineBatched|GNMTBatchedDecode|WideBatchedPredict|OfflineGNMT|Serving' \
    -benchmem -count "$COUNT" . | tee "$raw"

awk -v generated="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go version)" \
    -v count="$COUNT" \
    -v simd="$simd_dispatch" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns[name] += $3; runs[name]++
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes[name]  += $(i-1)
        if ($i == "allocs/op") allocs[name] += $(i-1)
        if ($i == "ns/sample") nssample[name] += $(i-1)
        if ($i == "samples/s") sps[name] += $(i-1)
        if ($i == "qps")            qps[name]     += $(i-1)
        if ($i == "queue_p99_ns")   queuep99[name] += $(i-1)
        if ($i == "service_p99_ns") svcp99[name]  += $(i-1)
        if ($i == "replica0_completed")      r0done[name] += $(i-1)
        if ($i == "replica1_completed")      r1done[name] += $(i-1)
        if ($i == "replica0_service_p99_ns") r0p99[name]  += $(i-1)
        if ($i == "replica1_service_p99_ns") r1p99[name]  += $(i-1)
        if ($i == "rejoin_ms")               rejoin[name] += $(i-1)
        if ($i == "workers_final")           wfinal[name] += $(i-1)
        if ($i == "resize_decisions")        rdecide[name] += $(i-1)
        if ($i == "gflops")                  gflops[name] += $(i-1)
        if ($i == "spans")                   spans[name]  += $(i-1)
        if ($i == "sessions")                sess[name]   += $(i-1)
        if ($i == "churns")                  churn[name]  += $(i-1)
    }
    if (!(name in order)) { order[name] = ++n; names[n] = name }
}
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
function avg(arr, name) { return runs[name] > 0 ? arr[name] / runs[name] : 0 }
function speedup(prefix, batch) {
    p = prefix "/batch" batch "/persample"
    b = prefix "/batch" batch "/batched"
    return avg(ns, b) > 0 ? avg(ns, p) / avg(ns, b) : 0
}
function simdspeed(shape, tier) {
    off  = "BenchmarkKernelGEMMSIMD/" shape "/off"
    simd = "BenchmarkKernelGEMMSIMD/" shape "/" tier
    return avg(ns, simd) > 0 ? avg(ns, off) / avg(ns, simd) : 0
}
END {
    printf "{\n"
    printf "  \"generated_utc\": \"%s\",\n", generated
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"simd_dispatch\": \"%s\",\n", simd
    printf "  \"count\": %d,\n", count
    printf "  \"benchmarks\": {\n"
    for (i = 1; i <= n; i++) {
        name = names[i]
        printf "    \"%s\": {\"ns_per_op\": %.0f, \"bytes_per_op\": %.0f, \"allocs_per_op\": %.1f", \
            name, avg(ns, name), avg(bytes, name), avg(allocs, name)
        if (nssample[name] > 0) printf ", \"ns_per_sample\": %.0f", avg(nssample, name)
        if (sps[name] > 0)      printf ", \"samples_per_sec\": %.1f", avg(sps, name)
        if (qps[name] > 0)      printf ", \"qps\": %.1f", avg(qps, name)
        if (queuep99[name] > 0) printf ", \"queue_p99_ns\": %.0f", avg(queuep99, name)
        if (svcp99[name] > 0)   printf ", \"service_p99_ns\": %.0f", avg(svcp99, name)
        if (r0done[name] > 0)   printf ", \"replica0_completed\": %.0f", avg(r0done, name)
        if (r1done[name] > 0)   printf ", \"replica1_completed\": %.0f", avg(r1done, name)
        if (r0p99[name] > 0)    printf ", \"replica0_service_p99_ns\": %.0f", avg(r0p99, name)
        if (r1p99[name] > 0)    printf ", \"replica1_service_p99_ns\": %.0f", avg(r1p99, name)
        if (rejoin[name] > 0)   printf ", \"rejoin_ms\": %.2f", avg(rejoin, name)
        if (wfinal[name] > 0)   printf ", \"workers_final\": %.1f", avg(wfinal, name)
        if (rdecide[name] > 0)  printf ", \"resize_decisions\": %.1f", avg(rdecide, name)
        if (gflops[name] > 0)   printf ", \"gflops\": %.2f", avg(gflops, name)
        if (spans[name] > 0)    printf ", \"spans\": %.1f", avg(spans, name)
        if (sess[name] > 0)     printf ", \"sessions\": %.0f", avg(sess, name)
        if (churn[name] > 0)    printf ", \"churns\": %.0f", avg(churn, name)
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  },\n"
    printf "  \"derived\": {\n"
    printf "    \"gemm_simd_speedup_vs_scalar\": {\"cache_avx2\": %.2f, \"cache_fma\": %.2f, \"stream_avx2\": %.2f, \"stream_fma\": %.2f},\n", \
        simdspeed("cache_64x64x64", "avx2"), simdspeed("cache_64x64x64", "fma"), \
        simdspeed("stream_64x256x4096", "avx2"), simdspeed("stream_64x256x4096", "fma")
    printf "    \"gemm_simd_gflops\": {\"cache_off\": %.2f, \"cache_avx2\": %.2f, \"cache_fma\": %.2f, \"stream_off\": %.2f, \"stream_avx2\": %.2f, \"stream_fma\": %.2f},\n", \
        avg(gflops, "BenchmarkKernelGEMMSIMD/cache_64x64x64/off"), \
        avg(gflops, "BenchmarkKernelGEMMSIMD/cache_64x64x64/avx2"), \
        avg(gflops, "BenchmarkKernelGEMMSIMD/cache_64x64x64/fma"), \
        avg(gflops, "BenchmarkKernelGEMMSIMD/stream_64x256x4096/off"), \
        avg(gflops, "BenchmarkKernelGEMMSIMD/stream_64x256x4096/avx2"), \
        avg(gflops, "BenchmarkKernelGEMMSIMD/stream_64x256x4096/fma")
    printf "    \"matmul_speedup_vs_serial\": %.2f,\n", \
        avg(ns, "BenchmarkKernelMatMul/serial") / avg(ns, "BenchmarkKernelMatMul/blocked")
    printf "    \"conv2d_speedup_vs_serial\": %.2f,\n", \
        avg(ns, "BenchmarkKernelConv2D/serial") / avg(ns, "BenchmarkKernelConv2D/im2col")
    printf "    \"depthwise_speedup_vs_serial\": %.2f,\n", \
        avg(ns, "BenchmarkKernelDepthwiseConv2D/serial") / avg(ns, "BenchmarkKernelDepthwiseConv2D/rowwise")
    printf "    \"resnet50_allocs_heap_vs_scratch\": [%.1f, %.1f],\n", \
        avg(allocs, "BenchmarkNativeClassifier/resnet50/heap"), \
        avg(allocs, "BenchmarkNativeClassifier/resnet50/scratch")
    printf "    \"mobilenet_allocs_heap_vs_scratch\": [%.1f, %.1f],\n", \
        avg(allocs, "BenchmarkNativeClassifier/mobilenet/heap"), \
        avg(allocs, "BenchmarkNativeClassifier/mobilenet/scratch")
    printf "    \"resnet50_batched_predict_speedup_vs_persample\": {\"batch1\": %.3f, \"batch8\": %.3f, \"batch32\": %.3f},\n", \
        speedup("BenchmarkBatchedPredict/resnet50", 1), speedup("BenchmarkBatchedPredict/resnet50", 8), speedup("BenchmarkBatchedPredict/resnet50", 32)
    printf "    \"mobilenet_batched_predict_speedup_vs_persample\": {\"batch1\": %.3f, \"batch8\": %.3f, \"batch32\": %.3f},\n", \
        speedup("BenchmarkBatchedPredict/mobilenet", 1), speedup("BenchmarkBatchedPredict/mobilenet", 8), speedup("BenchmarkBatchedPredict/mobilenet", 32)
    printf "    \"gnmt_batched_decode_speedup_vs_serial\": {\"batch1\": %.3f, \"batch8\": %.3f, \"batch32\": %.3f},\n", \
        speedup("BenchmarkGNMTBatchedDecode", 1), speedup("BenchmarkGNMTBatchedDecode", 8), speedup("BenchmarkGNMTBatchedDecode", 32)
    printf "    \"wide_classifier_batched_speedup_vs_persample\": {\"batch1\": %.3f, \"batch8\": %.3f, \"batch32\": %.3f},\n", \
        speedup("BenchmarkWideBatchedPredict", 1), speedup("BenchmarkWideBatchedPredict", 8), speedup("BenchmarkWideBatchedPredict", 32)
    printf "    \"offline_scenario_batched_vs_persample_throughput\": [%.1f, %.1f],\n", \
        avg(sps, "BenchmarkOfflineBatched/batched"), avg(sps, "BenchmarkOfflineBatched/persample")
    printf "    \"offline_translation_batched_vs_persample_throughput\": [%.1f, %.1f],\n", \
        avg(sps, "BenchmarkOfflineGNMT/batched"), avg(sps, "BenchmarkOfflineGNMT/persample")
    printf "    \"serving_server_qps_inprocess_vs_remote\": [%.1f, %.1f],\n", \
        avg(qps, "BenchmarkServingServer/inprocess"), avg(qps, "BenchmarkServingServer/remote")
    printf "    \"serving_offline_throughput_inprocess_vs_remote\": [%.1f, %.1f],\n", \
        avg(sps, "BenchmarkServingOffline/inprocess"), avg(sps, "BenchmarkServingOffline/remote")
    printf "    \"serving_latency_breakdown_p99_ns\": {\"server_queue\": %.0f, \"server_service\": %.0f, \"offline_queue\": %.0f, \"offline_service\": %.0f},\n", \
        avg(queuep99, "BenchmarkServingServer/remote"), avg(svcp99, "BenchmarkServingServer/remote"), \
        avg(queuep99, "BenchmarkServingOffline/remote"), avg(svcp99, "BenchmarkServingOffline/remote")
    printf "    \"serving_offline_throughput_1_vs_2_replicas\": [%.1f, %.1f],\n", \
        avg(sps, "BenchmarkServingReplicas/offline/replicas1"), avg(sps, "BenchmarkServingReplicas/offline/replicas2")
    printf "    \"serving_offline_2replica_speedup\": %.3f,\n", \
        (avg(sps, "BenchmarkServingReplicas/offline/replicas1") > 0 ? \
         avg(sps, "BenchmarkServingReplicas/offline/replicas2") / avg(sps, "BenchmarkServingReplicas/offline/replicas1") : 0)
    printf "    \"serving_server_qps_1_vs_2_replicas\": [%.1f, %.1f],\n", \
        avg(qps, "BenchmarkServingReplicas/server/replicas1"), avg(qps, "BenchmarkServingReplicas/server/replicas2")
    printf "    \"serving_2replica_offline_per_replica\": {\"completed\": [%.0f, %.0f], \"service_p99_ns\": [%.0f, %.0f]},\n", \
        avg(r0done, "BenchmarkServingReplicas/offline/replicas2"), avg(r1done, "BenchmarkServingReplicas/offline/replicas2"), \
        avg(r0p99, "BenchmarkServingReplicas/offline/replicas2"), avg(r1p99, "BenchmarkServingReplicas/offline/replicas2")
    printf "    \"serving_recovery\": {\"faulted_offline_samples_per_sec\": %.1f, \"rejoin_ms\": %.2f},\n", \
        avg(sps, "BenchmarkServingRecovery"), avg(rejoin, "BenchmarkServingRecovery")
    printf "    \"serving_autoscale\": {\"static_samples_per_sec\": %.1f, \"managed_samples_per_sec\": %.1f, \"workers_final\": %.1f, \"resize_decisions\": %.1f},\n", \
        avg(sps, "BenchmarkServingAutoscale/static"), avg(sps, "BenchmarkServingAutoscale/managed"), \
        avg(wfinal, "BenchmarkServingAutoscale/managed"), avg(rdecide, "BenchmarkServingAutoscale/managed")
    printf "    \"serving_swarm\": {\"qps\": %.1f, \"sessions\": %.0f, \"churns\": %.0f, \"wire_ns_per_op\": %.1f, \"wire_allocs_per_op\": %.1f},\n", \
        avg(qps, "BenchmarkServingSwarm"), avg(sess, "BenchmarkServingSwarm"), avg(churn, "BenchmarkServingSwarm"), \
        avg(ns, "BenchmarkServingSwarmWire"), avg(allocs, "BenchmarkServingSwarmWire")
    printf "    \"serving_trace_qps_untraced_vs_traced\": [%.1f, %.1f],\n", \
        avg(qps, "BenchmarkServingTrace/untraced"), avg(qps, "BenchmarkServingTrace/traced")
    printf "    \"serving_trace_overhead_fraction\": %.4f\n", \
        (avg(qps, "BenchmarkServingTrace/untraced") > 0 ? \
         1 - avg(qps, "BenchmarkServingTrace/traced") / avg(qps, "BenchmarkServingTrace/untraced") : 0)
    printf "  }\n"
    printf "}\n"
}' "$raw" > "$OUT"

echo "wrote $OUT"
