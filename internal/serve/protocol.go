package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Wire protocol. Every message — both directions — is one length-prefixed
// frame:
//
//	[u32 body length (big endian)] [u8 message type] [body ...]
//
// Client → server bodies:
//
//	MsgPredict: u64 request id, u32 sample index, i64 absolute deadline
//	            (UnixNano, 0 = none)
//	MsgFlush:   empty — end of the query series; the batcher flushes and
//	            switches to pass-through (backend.Batching semantics)
//	MsgReopen:  empty — re-arm batching for a new series
//	MsgMetrics: u64 request id — ask for a metrics snapshot
//
// Server → client bodies:
//
//	MsgPredict: u64 request id, u8 status, payload bytes (the sample's
//	            encoded model.Output when status is StatusOK, empty otherwise)
//	MsgMetrics: u64 request id, JSON-encoded Snapshot
//
// The payload bytes are exactly what model.Output.Encode produces, so a
// response relayed by backend.Remote is bit-identical to what backend.Native
// hands the LoadGen for the same sample. Sample *indexes*, not tensors, cross
// the wire: like the reference LoadGen's QSL contract, the data set is loaded
// on the serving side before the timed run, and the network carries queries
// and answers only.
const (
	// MsgPredict requests inference for one sample (and carries its answer).
	MsgPredict byte = 1
	// MsgFlush marks the end of the query series.
	MsgFlush byte = 2
	// MsgReopen re-arms batching for a new series.
	MsgReopen byte = 3
	// MsgMetrics requests a metrics snapshot.
	MsgMetrics byte = 4
)

// Status reports how the server disposed of a predict request.
type Status byte

const (
	// StatusOK: inference ran; the payload is the encoded output.
	StatusOK Status = iota
	// StatusRejected: admission control turned the request away (queue full).
	StatusRejected
	// StatusExpired: the request's deadline passed before service began.
	StatusExpired
	// StatusError: the sample failed to load, infer or encode.
	StatusError
)

// String returns the status's wire-log name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRejected:
		return "rejected"
	case StatusExpired:
		return "expired"
	case StatusError:
		return "error"
	default:
		return fmt.Sprintf("status(%d)", byte(s))
	}
}

// maxFrameBytes bounds a single frame so a corrupt length prefix cannot make
// a reader allocate unboundedly. Encoded outputs are small (a class id, a box
// list, a token list); 16 MiB is far above anything legitimate.
const maxFrameBytes = 16 << 20

// PredictRequest is the client-side form of a MsgPredict request frame.
type PredictRequest struct {
	// ID is echoed verbatim in the response so the client can demultiplex
	// concurrent requests on one connection.
	ID uint64
	// SampleIndex addresses the sample in the server's store.
	SampleIndex int
	// Deadline, when non-zero, is the absolute time after which the server
	// must not begin service (it answers StatusExpired instead). Client and
	// server share a clock on a loopback deployment.
	Deadline time.Time
}

// PredictResponse is the client-side form of a MsgPredict response frame.
type PredictResponse struct {
	ID     uint64
	Status Status
	// Data is the encoded model.Output for StatusOK, empty otherwise.
	Data []byte
}

// writeFrame emits one frame. The caller serializes concurrent writers.
func writeFrame(w io.Writer, msgType byte, body []byte) error {
	var header [5]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	header[4] = msgType
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one frame, returning its type and body.
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var header [5]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(header[:4])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return header[4], body, nil
}

// WritePredictRequest encodes and writes one predict request frame.
func WritePredictRequest(w io.Writer, req PredictRequest) error {
	var body [20]byte
	binary.BigEndian.PutUint64(body[0:8], req.ID)
	binary.BigEndian.PutUint32(body[8:12], uint32(req.SampleIndex))
	var deadline int64
	if !req.Deadline.IsZero() {
		deadline = req.Deadline.UnixNano()
	}
	binary.BigEndian.PutUint64(body[12:20], uint64(deadline))
	return writeFrame(w, MsgPredict, body[:])
}

// decodePredictRequest parses a MsgPredict request body.
func decodePredictRequest(body []byte) (PredictRequest, error) {
	if len(body) != 20 {
		return PredictRequest{}, fmt.Errorf("serve: predict request body is %d bytes, want 20", len(body))
	}
	req := PredictRequest{
		ID:          binary.BigEndian.Uint64(body[0:8]),
		SampleIndex: int(binary.BigEndian.Uint32(body[8:12])),
	}
	if nanos := int64(binary.BigEndian.Uint64(body[12:20])); nanos != 0 {
		req.Deadline = time.Unix(0, nanos)
	}
	return req, nil
}

// encodePredictResponse builds a MsgPredict response body.
func encodePredictResponse(id uint64, status Status, data []byte) []byte {
	body := make([]byte, 9+len(data))
	binary.BigEndian.PutUint64(body[0:8], id)
	body[8] = byte(status)
	copy(body[9:], data)
	return body
}

// decodePredictResponse parses a MsgPredict response body.
func decodePredictResponse(body []byte) (PredictResponse, error) {
	if len(body) < 9 {
		return PredictResponse{}, fmt.Errorf("serve: predict response body is %d bytes, want >= 9", len(body))
	}
	resp := PredictResponse{
		ID:     binary.BigEndian.Uint64(body[0:8]),
		Status: Status(body[8]),
	}
	if len(body) > 9 {
		resp.Data = body[9:]
	}
	return resp, nil
}

// WriteControl writes a bodyless control frame (MsgFlush, MsgReopen).
func WriteControl(w io.Writer, msgType byte) error {
	return writeFrame(w, msgType, nil)
}

// WriteMetricsRequest writes a metrics-snapshot request frame.
func WriteMetricsRequest(w io.Writer, id uint64) error {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], id)
	return writeFrame(w, MsgMetrics, body[:])
}

// ClientFrame is one server → client message, as read by backend.Remote.
type ClientFrame struct {
	// Type is the frame's message type (MsgPredict or MsgMetrics).
	Type byte
	// Predict is populated when Type is MsgPredict.
	Predict PredictResponse
	// MetricsID and MetricsJSON are populated when Type is MsgMetrics.
	MetricsID   uint64
	MetricsJSON []byte
}

// ReadClientFrame reads and decodes one server → client frame.
func ReadClientFrame(r *bufio.Reader) (ClientFrame, error) {
	msgType, body, err := readFrame(r)
	if err != nil {
		return ClientFrame{}, err
	}
	frame := ClientFrame{Type: msgType}
	switch msgType {
	case MsgPredict:
		frame.Predict, err = decodePredictResponse(body)
	case MsgMetrics:
		frame.MetricsID, frame.MetricsJSON, err = decodeIDPrefix(body)
	default:
		err = fmt.Errorf("serve: unexpected server frame type %d", msgType)
	}
	if err != nil {
		return ClientFrame{}, err
	}
	return frame, nil
}

// encodeIDPrefix builds a body of one u64 id followed by data.
func encodeIDPrefix(id uint64, data []byte) []byte {
	body := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(body[0:8], id)
	copy(body[8:], data)
	return body
}

// decodeIDPrefix splits a body into its u64 id and the rest.
func decodeIDPrefix(body []byte) (uint64, []byte, error) {
	if len(body) < 8 {
		return 0, nil, fmt.Errorf("serve: body is %d bytes, want >= 8", len(body))
	}
	return binary.BigEndian.Uint64(body[0:8]), body[8:], nil
}
