package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Equivalence tests: the blocked/parallel kernels must agree with the
// retained serial reference kernels over randomized shapes (including
// padding and stride edge cases) and be bit-for-bit deterministic across
// repeated runs at a fixed worker count.

const kernelTol = 1e-4

func randFilled(r *rand.Rand, shape ...int) *Tensor {
	t := MustNew(shape...)
	for i := range t.data {
		t.data[i] = float32(r.NormFloat64())
	}
	return t
}

func requireEqualish(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if !Equalish(got, want, kernelTol) {
		t.Fatalf("%s: parallel kernel diverges from serial reference (shapes %v vs %v)",
			label, got.Shape(), want.Shape())
	}
}

// requireKernelMatch compares two GEMM-derived results that may have taken
// different panel/column splits. Off and avx2 guarantee bit-identity across
// any split; the FMA tier only guarantees it within the vectorized region, so
// there the comparison relaxes to the kernel tolerance (see simd.go).
func requireKernelMatch(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if ActiveSIMD() == SIMDFMA {
		requireEqualish(t, got, want, label)
		return
	}
	requireBitIdentical(t, got, want, label)
}

func requireBitIdentical(t *testing.T, a, b *Tensor, label string) {
	t.Helper()
	if !SameShape(a, b) {
		t.Fatalf("%s: shapes differ: %v vs %v", label, a.Shape(), b.Shape())
	}
	for i := range a.data {
		if math.Float32bits(a.data[i]) != math.Float32bits(b.data[i]) {
			t.Fatalf("%s: element %d differs bit-for-bit: %x vs %x",
				label, i, math.Float32bits(a.data[i]), math.Float32bits(b.data[i]))
		}
	}
}

func TestMatMulMatchesSerialRandomShapes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		m, k, n := 1+r.Intn(40), 1+r.Intn(40), 1+r.Intn(40)
		a := randFilled(r, m, k)
		b := randFilled(r, k, n)
		got, err := MatMul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MatMulSerial(a, b)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualish(t, got, want, "MatMul")
	}
}

func TestMatMulMatchesSerialAboveParallelThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	// 131×130×129 ≈ 2.2M MACs > ParallelFlopThreshold, so the parallel
	// strip-partitioned path runs on multi-core hosts; the odd sizes force
	// both the 4-row kernel and the remainder row/chunk boundaries.
	m, k, n := 131, 130, 129
	if m*k*n <= ParallelFlopThreshold() {
		t.Fatalf("test workload %d MACs no longer exceeds ParallelFlopThreshold %d", m*k*n, ParallelFlopThreshold())
	}
	a := randFilled(r, m, k)
	b := randFilled(r, k, n)
	got, _ := MatMul(a, b)
	want, _ := MatMulSerial(a, b)
	requireEqualish(t, got, want, "MatMul(large)")
}

func TestMatVecMatchesSerialAboveParallelThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	m, k := 1031, 1030
	if m*k <= ParallelFlopThreshold() {
		t.Fatalf("test workload %d MACs no longer exceeds ParallelFlopThreshold %d", m*k, ParallelFlopThreshold())
	}
	a := randFilled(r, m, k)
	x := randFilled(r, k)
	got, _ := MatVec(a, x)
	want, _ := MatVecSerial(a, x)
	requireEqualish(t, got, want, "MatVec(large)")
}

func TestMatVecMatchesSerialRandomShapes(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		m, k := 1+r.Intn(300), 1+r.Intn(300)
		a := randFilled(r, m, k)
		x := randFilled(r, k)
		got, err := MatVec(a, x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MatVecSerial(a, x)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualish(t, got, want, "MatVec")
	}
}

func TestConv2DMatchesSerialRandomShapes(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	trials := 0
	for trials < 80 {
		cin, cout := 1+r.Intn(6), 1+r.Intn(8)
		h, w := 1+r.Intn(14), 1+r.Intn(14)
		kh, kw := 1+r.Intn(5), 1+r.Intn(5)
		opts := Conv2DOptions{Stride: 1 + r.Intn(3), Padding: r.Intn(3)}
		if (h+2*opts.Padding-kh)/opts.Stride+1 <= 0 || (w+2*opts.Padding-kw)/opts.Stride+1 <= 0 {
			continue
		}
		trials++
		input := randFilled(r, cin, h, w)
		kernels := randFilled(r, cout, cin, kh, kw)
		var bias *Tensor
		if r.Intn(2) == 0 {
			bias = randFilled(r, cout)
		}
		got, err := Conv2D(input, kernels, bias, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Conv2DSerial(input, kernels, bias, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualish(t, got, want, "Conv2D")
	}
}

// Kernels reaching exactly to the padded border and strides that skip the
// last columns are the classic im2col off-by-one traps.
func TestConv2DPaddingStrideEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	cases := []struct {
		h, w, kh, kw, stride, pad int
	}{
		{1, 1, 1, 1, 1, 0},
		{1, 1, 3, 3, 1, 1}, // output exists only thanks to padding
		{5, 5, 5, 5, 1, 2}, // kernel as large as input, heavy padding
		{7, 3, 3, 3, 2, 1}, // rectangular input, strided
		{8, 8, 2, 2, 3, 0}, // stride skips trailing columns
		{4, 9, 3, 1, 2, 0}, // 1-wide kernel
		{9, 4, 1, 3, 2, 1}, // 1-tall kernel
		{6, 6, 3, 3, 6, 2}, // stride larger than kernel
	}
	for _, tc := range cases {
		opts := Conv2DOptions{Stride: tc.stride, Padding: tc.pad}
		input := randFilled(r, 3, tc.h, tc.w)
		kernels := randFilled(r, 4, 3, tc.kh, tc.kw)
		bias := randFilled(r, 4)
		got, err := Conv2D(input, kernels, bias, opts)
		if err != nil {
			t.Fatalf("case %+v: %v", tc, err)
		}
		want, err := Conv2DSerial(input, kernels, bias, opts)
		if err != nil {
			t.Fatalf("case %+v: %v", tc, err)
		}
		requireEqualish(t, got, want, "Conv2D(edge)")
	}
}

func TestConv2DMatchesSerialAboveParallelThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	input := randFilled(r, 16, 32, 32)
	kernels := randFilled(r, 32, 16, 3, 3)
	bias := randFilled(r, 32)
	opts := Conv2DOptions{Stride: 1, Padding: 1}
	// 32 out-channels × (16·3·3) taps × (32·32) positions ≈ 4.7M MACs, above
	// ParallelFlopThreshold, so the GEMM runs its parallel path.
	if 32*16*3*3*32*32 <= ParallelFlopThreshold() {
		t.Fatalf("test workload no longer exceeds ParallelFlopThreshold %d", ParallelFlopThreshold())
	}
	got, err := Conv2D(input, kernels, bias, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Conv2DSerial(input, kernels, bias, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualish(t, got, want, "Conv2D(large)")
}

func TestDepthwiseConv2DMatchesSerialRandomShapes(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	trials := 0
	for trials < 80 {
		c := 1 + r.Intn(8)
		h, w := 1+r.Intn(14), 1+r.Intn(14)
		kh, kw := 1+r.Intn(5), 1+r.Intn(5)
		opts := Conv2DOptions{Stride: 1 + r.Intn(3), Padding: r.Intn(3)}
		if (h+2*opts.Padding-kh)/opts.Stride+1 <= 0 || (w+2*opts.Padding-kw)/opts.Stride+1 <= 0 {
			continue
		}
		trials++
		input := randFilled(r, c, h, w)
		kernels := randFilled(r, c, kh, kw)
		var bias *Tensor
		if r.Intn(2) == 0 {
			bias = randFilled(r, c)
		}
		got, err := DepthwiseConv2D(input, kernels, bias, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DepthwiseConv2DSerial(input, kernels, bias, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireEqualish(t, got, want, "DepthwiseConv2D")
	}
}

func TestDepthwiseConv2DMatchesSerialAboveParallelThreshold(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	input := randFilled(r, 64, 64, 64)
	kernels := randFilled(r, 64, 3, 3)
	opts := Conv2DOptions{Stride: 1, Padding: 1}
	// 64 channels × (64·64) positions × 9 taps ≈ 2.4M MACs, above
	// ParallelFlopThreshold, so channels are distributed over the pool.
	if 64*64*64*3*3 <= ParallelFlopThreshold() {
		t.Fatalf("test workload no longer exceeds ParallelFlopThreshold %d", ParallelFlopThreshold())
	}
	got, err := DepthwiseConv2D(input, kernels, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DepthwiseConv2DSerial(input, kernels, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualish(t, got, want, "DepthwiseConv2D(large)")
}

// The parallel kernels must be bit-for-bit reproducible run to run: every
// output element is accumulated by exactly one goroutine in a fixed order,
// so the worker count and chunk scheduling must not leak into results.
func TestKernelsDeterministicAcrossRuns(t *testing.T) {
	r := rand.New(rand.NewSource(19))

	// All three workloads sit above ParallelFlopThreshold so the parallel
	// paths (not just the inline fallbacks) are what repeat runs compare.
	a := randFilled(r, 131, 130)
	b := randFilled(r, 130, 129)
	m1, _ := MatMul(a, b)
	m2, _ := MatMul(a, b)
	requireBitIdentical(t, m1, m2, "MatMul")

	input := randFilled(r, 16, 64, 64)
	kernels := randFilled(r, 32, 16, 3, 3)
	bias := randFilled(r, 32)
	opts := Conv2DOptions{Stride: 2, Padding: 1}
	c1, _ := Conv2D(input, kernels, bias, opts)
	c2, _ := Conv2D(input, kernels, bias, opts)
	requireBitIdentical(t, c1, c2, "Conv2D")

	big := randFilled(r, 64, 64, 64)
	dwK := randFilled(r, 64, 3, 3)
	d1, _ := DepthwiseConv2D(big, dwK, nil, Conv2DOptions{Stride: 1, Padding: 1})
	d2, _ := DepthwiseConv2D(big, dwK, nil, Conv2DOptions{Stride: 1, Padding: 1})
	requireBitIdentical(t, d1, d2, "DepthwiseConv2D")
}

// The Into variants on recycled scratch memory must produce the same results
// as the allocating entry points — scratch memory is dirty by design, so any
// incomplete overwrite shows up here.
func TestIntoVariantsOnRecycledScratchMatch(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	s := NewScratch()
	input := randFilled(r, 8, 13, 11)
	kernels := randFilled(r, 12, 8, 3, 3)
	bias := randFilled(r, 12)
	opts := Conv2DOptions{Stride: 2, Padding: 1}
	want, err := Conv2D(input, kernels, bias, opts)
	if err != nil {
		t.Fatal(err)
	}

	for pass := 0; pass < 3; pass++ {
		s.Reset()
		// Poison the arena so stale contents are visible if not overwritten.
		dirty := s.Floats(1 << 14)
		for i := range dirty {
			dirty[i] = float32(math.NaN())
		}
		s.Reset()

		dst := s.Tensor(want.Shape()...)
		if err := Conv2DInto(dst, input, kernels, bias, opts, s); err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, dst, want, "Conv2DInto(scratch)")

		a := randFilled(r, 20, 30)
		bmat := randFilled(r, 30, 25)
		mm := s.Tensor(20, 25)
		if err := MatMulInto(mm, a, bmat); err != nil {
			t.Fatal(err)
		}
		mmWant, _ := MatMul(a, bmat)
		requireBitIdentical(t, mm, mmWant, "MatMulInto(scratch)")

		x := randFilled(r, 30)
		mv := s.Tensor(20)
		if err := MatVecInto(mv, a, x); err != nil {
			t.Fatal(err)
		}
		mvWant, _ := MatVec(a, x)
		requireBitIdentical(t, mv, mvWant, "MatVecInto(scratch)")

		dw := randFilled(r, 8, 3, 3)
		dwDst := s.Tensor(8, 7, 6)
		if err := DepthwiseConv2DInto(dwDst, input, dw, nil, opts); err != nil {
			t.Fatal(err)
		}
		dwWant, _ := DepthwiseConv2D(input, dw, nil, opts)
		requireBitIdentical(t, dwDst, dwWant, "DepthwiseConv2DInto(scratch)")

		mp := s.Tensor(8, 6, 5)
		if err := MaxPool2DInto(mp, input, 3, 2); err != nil {
			t.Fatal(err)
		}
		mpWant, _ := MaxPool2D(input, 3, 2)
		requireBitIdentical(t, mp, mpWant, "MaxPool2DInto(scratch)")

		gap := s.Tensor(8)
		if err := GlobalAvgPool2DInto(gap, input); err != nil {
			t.Fatal(err)
		}
		gapWant, _ := GlobalAvgPool2D(input)
		requireBitIdentical(t, gap, gapWant, "GlobalAvgPool2DInto(scratch)")
	}
}

func TestIntoVariantsRejectBadShapes(t *testing.T) {
	a := MustNew(3, 4)
	b := MustNew(4, 5)
	if err := MatMulInto(MustNew(3, 6), a, b); err == nil {
		t.Error("MatMulInto wrong dst shape: expected error")
	}
	if err := MatVecInto(MustNew(4), a, MustNew(4)); err == nil {
		t.Error("MatVecInto wrong dst shape: expected error")
	}
	input := MustNew(2, 8, 8)
	kern := MustNew(4, 2, 3, 3)
	if err := Conv2DInto(MustNew(4, 9, 9), input, kern, nil, Conv2DOptions{Stride: 1}, nil); err == nil {
		t.Error("Conv2DInto wrong dst shape: expected error")
	}
	if err := DepthwiseConv2DInto(MustNew(2, 5, 5), input, MustNew(2, 3, 3), nil, Conv2DOptions{Stride: 1}); err == nil {
		t.Error("DepthwiseConv2DInto wrong dst shape: expected error")
	}
}
