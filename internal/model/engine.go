package model

import (
	"fmt"

	"mlperf/internal/dataset"
	"mlperf/internal/metrics"
	"mlperf/internal/payload"
	"mlperf/internal/tensor"
)

// Engine is the single batch-first inference contract between the model zoo
// and every system under test. A backend hands an Engine a slice of samples —
// one for a single-stream query, a whole merged query for the server/offline
// batching path — and receives one Output per sample, in order. Implementers
// must make Predict on a batch bit-for-bit identical to N single-sample
// Predict calls (the batch-vs-single equivalence tests enforce this), so
// dynamic batching is purely a throughput decision and never perturbs
// accuracy-mode results.
type Engine interface {
	// Name identifies the model (e.g. "resnet50-v1.5") in results.
	Name() string
	// Kind reports the task family the engine serves; backends use it to
	// validate sample payloads and accuracy scripts use it to pick a metric.
	Kind() dataset.Kind
	// Predict runs inference on every sample and returns one Output per
	// sample, in input order. Intermediates are allocated from s when non-nil
	// (the caller owns the arena and must Reset it between passes); a nil s
	// uses a pooled arena internally. Returned Outputs are plain values that
	// do not alias arena memory.
	Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error)
}

// Output is one tagged prediction. Exactly the field group matching Kind is
// meaningful: Class for image classification, Boxes for object detection,
// Tokens for translation.
type Output struct {
	Kind   dataset.Kind
	Class  int
	Boxes  []metrics.Box
	Tokens []int
}

// Encode serializes the output into the suite's response wire format
// (internal/payload), ready to hand back to the LoadGen.
func (o Output) Encode() ([]byte, error) {
	switch o.Kind {
	case dataset.KindImageClassification:
		return payload.EncodeClass(o.Class)
	case dataset.KindObjectDetection:
		return payload.EncodeBoxes(o.Boxes)
	case dataset.KindTranslation:
		return payload.EncodeTokens(o.Tokens)
	default:
		return nil, fmt.Errorf("model: cannot encode output of kind %v", o.Kind)
	}
}

// stackImages packs the samples' CHW images into one arena-backed
// channel-major [C, N, H, W] batch, validating every image against the
// expected input shape.
func stackImages(name Name, inShape []int, samples []*dataset.Sample, s *tensor.Scratch) (*tensor.Tensor, error) {
	batch := s.Tensor(inShape[0], len(samples), inShape[1], inShape[2])
	for i, sample := range samples {
		if sample == nil || sample.Image == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no image", name, i)
		}
		img := sample.Image
		if img.Rank() != 3 || img.Dim(0) != inShape[0] || img.Dim(1) != inShape[1] || img.Dim(2) != inShape[2] {
			return nil, fmt.Errorf("model %s: sample %d shape %v, want %v", name, i, img.Shape(), inShape)
		}
		if err := tensor.PackSample(batch, img, i); err != nil {
			return nil, err
		}
	}
	return batch, nil
}

// withScratch invokes fn with s, or with a pooled arena when s is nil.
func withScratch(s *tensor.Scratch, fn func(*tensor.Scratch) error) error {
	if s == nil {
		s = tensor.GetScratch()
		defer tensor.PutScratch(s)
	}
	return fn(s)
}

// maxMicroBatch bounds how many samples one batched forward pass carries.
// Larger merged queries are processed in micro-batches of this size, keeping
// the activation working set cache-resident instead of scaling with the
// query. With a nil Scratch the pooled arena is recycled per micro-batch, so
// memory stays O(micro-batch); a caller-provided arena cannot be reset
// mid-call and grows with the whole query (the caller owns its lifecycle).
// Grouping does not change results: Predict on any batch is bit-identical to
// per-sample calls, so it is bit-identical under any grouping too.
const maxMicroBatch = 8

// inMicroBatches runs fn over [start, end) micro-batch windows of n samples.
func inMicroBatches(n int, fn func(start, end int) error) error {
	for start := 0; start < n; start += maxMicroBatch {
		end := start + maxMicroBatch
		if end > n {
			end = n
		}
		if err := fn(start, end); err != nil {
			return err
		}
	}
	return nil
}

// Name implements Engine.
func (m *ImageClassifier) Name() string { return string(m.info.Name) }

// Kind implements Engine.
func (m *ImageClassifier) Kind() dataset.Kind { return dataset.KindImageClassification }

// Predict implements Engine: each micro-batch runs as one im2col+GEMM per
// convolution layer and one GEMM through the classifier head.
func (m *ImageClassifier) Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	outputs := make([]Output, len(samples))
	err := inMicroBatches(len(samples), func(start, end int) error {
		group := samples[start:end]
		return withScratch(s, func(s *tensor.Scratch) error {
			batch, err := stackImages(m.info.Name, m.inShape, group, s)
			if err != nil {
				return err
			}
			logits, err := m.net.ForwardBatch(batch, s)
			if err != nil {
				return err
			}
			if logits.Rank() != 2 || logits.Dim(1) != len(group) {
				return fmt.Errorf("model %s: batched head produced %v, want [classes %d]", m.info.Name, logits.Shape(), len(group))
			}
			for i := range group {
				class, err := tensor.ColumnArgMax(logits, i)
				if err != nil {
					return err
				}
				outputs[start+i] = Output{Kind: dataset.KindImageClassification, Class: class}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return outputs, nil
}

// Name implements Engine.
func (d *SSDDetector) Name() string { return string(d.info.Name) }

// Kind implements Engine.
func (d *SSDDetector) Kind() dataset.Kind { return dataset.KindObjectDetection }

// Predict implements Engine: backbone and head each run once over every
// micro-batch; only the box decode (threshold + NMS) runs per sample.
func (d *SSDDetector) Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	outputs := make([]Output, len(samples))
	err := inMicroBatches(len(samples), func(start, end int) error {
		group := samples[start:end]
		return withScratch(s, func(s *tensor.Scratch) error {
			batch, err := stackImages(d.info.Name, d.inShape, group, s)
			if err != nil {
				return err
			}
			features, err := d.backbone.ForwardBatch(batch, s)
			if err != nil {
				return err
			}
			raw, err := d.head.ForwardBatch(features, s)
			if err != nil {
				return err
			}
			if raw.Rank() != 4 {
				return fmt.Errorf("model %s: batched head produced %v, want [perCell N H W]", d.info.Name, raw.Shape())
			}
			// Gather each sample's CHW head output out of the channel-major
			// batch for the per-sample decode (threshold + NMS).
			sampleRaw := s.Tensor(raw.Dim(0), raw.Dim(2), raw.Dim(3))
			for i := range group {
				if err := tensor.UnpackSample(sampleRaw, raw, i); err != nil {
					return err
				}
				boxes, err := d.decode(sampleRaw)
				if err != nil {
					return err
				}
				outputs[start+i] = Output{Kind: dataset.KindObjectDetection, Boxes: boxes}
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	return outputs, nil
}

// Name implements Engine.
func (g *GNMTMini) Name() string { return string(g.info.Name) }

// Kind implements Engine.
func (g *GNMTMini) Kind() dataset.Kind { return dataset.KindTranslation }

// Predict implements Engine. Greedy decoding lengths diverge per sentence,
// so the recurrent model loops samples behind the batched contract for now;
// the scratch arena still covers each sentence's recurrent steps.
func (g *GNMTMini) Predict(samples []*dataset.Sample, s *tensor.Scratch) ([]Output, error) {
	if len(samples) == 0 {
		return nil, nil
	}
	outputs := make([]Output, len(samples))
	for i, sample := range samples {
		if sample == nil || sample.Tokens == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no tokens", g.info.Name, i)
		}
		var (
			tokens []int
			err    error
		)
		if s != nil {
			tokens, err = g.net.TranslateScratch(sample.Tokens, s)
		} else {
			tokens, err = g.net.Translate(sample.Tokens)
		}
		if err != nil {
			return nil, err
		}
		outputs[i] = Output{Kind: dataset.KindTranslation, Tokens: tokens}
	}
	return outputs, nil
}

// EngineFromClassifier wraps a single-sample Classifier in the Engine
// contract, predicting sample by sample. It exists so hand-rolled classifiers
// (and the per-sample baseline in benchmarks) plug into the batch-first
// backend without implementing batching themselves.
func EngineFromClassifier(name string, c Classifier) Engine {
	return &classifierEngine{name: name, c: c}
}

type classifierEngine struct {
	name string
	c    Classifier
}

func (e *classifierEngine) Name() string       { return e.name }
func (e *classifierEngine) Kind() dataset.Kind { return dataset.KindImageClassification }

func (e *classifierEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]Output, error) {
	outputs := make([]Output, len(samples))
	for i, sample := range samples {
		if sample == nil || sample.Image == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no image", e.name, i)
		}
		class, err := e.c.Classify(sample.Image)
		if err != nil {
			return nil, err
		}
		outputs[i] = Output{Kind: dataset.KindImageClassification, Class: class}
	}
	return outputs, nil
}

// EngineFromDetector wraps a single-sample Detector in the Engine contract.
func EngineFromDetector(name string, d Detector) Engine {
	return &detectorEngine{name: name, d: d}
}

type detectorEngine struct {
	name string
	d    Detector
}

func (e *detectorEngine) Name() string       { return e.name }
func (e *detectorEngine) Kind() dataset.Kind { return dataset.KindObjectDetection }

func (e *detectorEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]Output, error) {
	outputs := make([]Output, len(samples))
	for i, sample := range samples {
		if sample == nil || sample.Image == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no image", e.name, i)
		}
		boxes, err := e.d.Detect(sample.Image)
		if err != nil {
			return nil, err
		}
		outputs[i] = Output{Kind: dataset.KindObjectDetection, Boxes: boxes}
	}
	return outputs, nil
}

// EngineFromTranslator wraps a single-sample Translator in the Engine
// contract.
func EngineFromTranslator(name string, t Translator) Engine {
	return &translatorEngine{name: name, t: t}
}

type translatorEngine struct {
	name string
	t    Translator
}

func (e *translatorEngine) Name() string       { return e.name }
func (e *translatorEngine) Kind() dataset.Kind { return dataset.KindTranslation }

func (e *translatorEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]Output, error) {
	outputs := make([]Output, len(samples))
	for i, sample := range samples {
		if sample == nil || sample.Tokens == nil {
			return nil, fmt.Errorf("model %s: sample %d carries no tokens", e.name, i)
		}
		tokens, err := e.t.Translate(sample.Tokens)
		if err != nil {
			return nil, err
		}
		outputs[i] = Output{Kind: dataset.KindTranslation, Tokens: tokens}
	}
	return outputs, nil
}
