package metrics

import (
	"fmt"
	"math"
)

// maxBLEUOrder is the highest n-gram order used by corpus BLEU, matching the
// SacreBLEU default the paper references for the translation task.
const maxBLEUOrder = 4

// BLEUAccumulator incrementally accumulates the sufficient statistics of
// corpus BLEU — clipped n-gram match and total counts per order plus corpus
// lengths — so a full-dataset accuracy sweep can be scored one sentence pair
// at a time in O(1) memory instead of retaining every hypothesis.
type BLEUAccumulator struct {
	matches [maxBLEUOrder]int
	totals  [maxBLEUOrder]int
	hypLen  int
	refLen  int
	pairs   int
}

// Add folds one hypothesis/reference pair into the corpus statistics.
func (a *BLEUAccumulator) Add(hyp, ref []int) {
	a.pairs++
	a.hypLen += len(hyp)
	a.refLen += len(ref)
	for n := 1; n <= maxBLEUOrder; n++ {
		hc := ngramCounts(hyp, n)
		rc := ngramCounts(ref, n)
		for g, c := range hc {
			if rcount := rc[g]; rcount < c {
				a.matches[n-1] += rcount
			} else {
				a.matches[n-1] += c
			}
		}
		t := len(hyp) - n + 1
		if t > 0 {
			a.totals[n-1] += t
		}
	}
}

// Pairs returns the number of sentence pairs accumulated so far.
func (a *BLEUAccumulator) Pairs() int { return a.pairs }

// Score returns the corpus BLEU of everything accumulated so far, in
// [0, 100] like SacreBLEU reports.
func (a *BLEUAccumulator) Score() (float64, error) {
	if a.pairs == 0 {
		return 0, fmt.Errorf("metrics: no sentence pairs to score")
	}
	// Geometric mean of modified n-gram precisions. A corpus with no unigram
	// matches scores 0; higher orders with no matches are smoothed
	// (add-epsilon) so short corpora do not zero out entirely, matching
	// SacreBLEU's exponential smoothing in spirit.
	if a.totals[0] == 0 || a.matches[0] == 0 {
		return 0, nil
	}
	logSum := 0.0
	for n := 0; n < maxBLEUOrder; n++ {
		if a.totals[n] == 0 {
			return 0, nil
		}
		p := float64(a.matches[n]) / float64(a.totals[n])
		if p == 0 {
			p = 1.0 / float64(2*a.totals[n])
		}
		logSum += math.Log(p)
	}
	geoMean := math.Exp(logSum / maxBLEUOrder)

	bp := 1.0
	if a.hypLen < a.refLen && a.hypLen > 0 {
		bp = math.Exp(1 - float64(a.refLen)/float64(a.hypLen))
	}
	if a.hypLen == 0 {
		return 0, nil
	}
	return 100 * bp * geoMean, nil
}

// CorpusBLEU computes corpus-level BLEU over tokenized hypothesis/reference
// pairs, with n-gram orders 1..4, uniform weights and the standard brevity
// penalty. The returned score is in [0, 100], like SacreBLEU reports. It is
// the batch form of BLEUAccumulator.
func CorpusBLEU(hypotheses, references [][]int) (float64, error) {
	if len(hypotheses) != len(references) {
		return 0, fmt.Errorf("metrics: %d hypotheses vs %d references", len(hypotheses), len(references))
	}
	var acc BLEUAccumulator
	for i := range hypotheses {
		acc.Add(hypotheses[i], references[i])
	}
	return acc.Score()
}

// ngramCounts returns the multiset of n-grams of the token sequence, encoded
// as strings of the token values.
func ngramCounts(tokens []int, n int) map[string]int {
	counts := make(map[string]int)
	for i := 0; i+n <= len(tokens); i++ {
		key := encodeNgram(tokens[i : i+n])
		counts[key]++
	}
	return counts
}

func encodeNgram(tokens []int) string {
	// Tokens are small ints; a compact textual key keeps this allocation-light
	// without needing hashing utilities.
	buf := make([]byte, 0, len(tokens)*4)
	for _, t := range tokens {
		buf = appendInt(buf, t)
		buf = append(buf, ',')
	}
	return string(buf)
}

func appendInt(buf []byte, v int) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	if v == 0 {
		return append(buf, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(buf, tmp[i:]...)
}
