// Package payload defines the wire format of SUT responses. The LoadGen
// treats response data as opaque bytes (it only logs them); the accuracy
// script decodes them after the run to score model quality. Keeping the codec
// in one place lets any SUT implementation and the accuracy checker agree on
// the format.
package payload

import (
	"encoding/json"
	"fmt"

	"mlperf/internal/metrics"
)

// classPayload carries an image-classification prediction.
type classPayload struct {
	Class int `json:"class"`
}

// detectionPayload carries object-detection predictions.
type detectionPayload struct {
	Boxes []metrics.Box `json:"boxes"`
}

// translationPayload carries a machine-translation hypothesis.
type translationPayload struct {
	Tokens []int `json:"tokens"`
}

// EncodeClass serializes a class prediction.
func EncodeClass(class int) ([]byte, error) {
	return json.Marshal(classPayload{Class: class})
}

// DecodeClass parses a class prediction.
func DecodeClass(data []byte) (int, error) {
	var p classPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return 0, fmt.Errorf("payload: decoding class prediction: %w", err)
	}
	return p.Class, nil
}

// EncodeBoxes serializes detection boxes.
func EncodeBoxes(boxes []metrics.Box) ([]byte, error) {
	return json.Marshal(detectionPayload{Boxes: boxes})
}

// DecodeBoxes parses detection boxes.
func DecodeBoxes(data []byte) ([]metrics.Box, error) {
	var p detectionPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("payload: decoding detection boxes: %w", err)
	}
	return p.Boxes, nil
}

// EncodeTokens serializes a translation hypothesis.
func EncodeTokens(tokens []int) ([]byte, error) {
	return json.Marshal(translationPayload{Tokens: tokens})
}

// DecodeTokens parses a translation hypothesis.
func DecodeTokens(data []byte) ([]int, error) {
	var p translationPayload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("payload: decoding translation tokens: %w", err)
	}
	return p.Tokens, nil
}
