package backend

import (
	"testing"
	"time"

	"mlperf/internal/serve"
	"mlperf/internal/trace"
)

// tracedSweep runs one accuracy sweep through a loopback pair built with the
// given client/server tracers (either may be nil) and returns both tracers'
// records afterwards.
func tracedSweep(t *testing.T, clientTr, serverTr *trace.Tracer) (client, server []trace.Record) {
	t.Helper()
	engine, qsl := buildClassificationStack(t)
	_, remote := startLoopback(t,
		serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond, Tracer: serverTr},
		RemoteConfig{Conns: 2, Tracer: clientTr})
	accuracyByIndex(t, remote, qsl)
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	return clientTr.Records(), serverTr.Records()
}

// TestTracedLoopbackRoundTrip: with sampling on both sides at 1/1, every
// request produces a client record carrying the folded server span block and
// a matching server record, with stage sums bounded by the end-to-end span.
func TestTracedLoopbackRoundTrip(t *testing.T) {
	clientTr := trace.New(trace.Config{SampleEvery: 1})
	serverTr := trace.New(trace.Config{SampleEvery: 1})
	client, server := tracedSweep(t, clientTr, serverTr)

	if len(client) == 0 || len(server) == 0 {
		t.Fatalf("empty rings: client %d, server %d records", len(client), len(server))
	}

	serverByID := make(map[uint64]trace.Record, len(server))
	for _, rec := range server {
		if rec.Origin != trace.OriginServer {
			t.Fatalf("server ring holds a %v-origin record", rec.Origin)
		}
		if rec.TraceID == 0 {
			// Tail-only capture of an untraced request can't happen at 1/1
			// sampling: every request carries a trace id.
			t.Fatal("server record without a trace id at 1/1 sampling")
		}
		if rec.Stages[trace.StageReply] <= 0 {
			t.Fatalf("server record %d missing reply span", rec.TraceID)
		}
		serverByID[rec.TraceID] = rec
	}

	for _, rec := range client {
		if rec.Origin != trace.OriginClient || rec.TraceID == 0 {
			t.Fatalf("client ring holds %+v", rec)
		}
		if !rec.HasServer || rec.ServerStart <= 0 {
			t.Fatalf("trace %d: client record lacks the folded server block", rec.TraceID)
		}
		if sum := rec.ClientNanos(); sum > rec.End2End {
			t.Errorf("trace %d: client stages sum to %dns > e2e %dns", rec.TraceID, sum, rec.End2End)
		}
		if srv := rec.ServerNanos(); srv > rec.End2End {
			t.Errorf("trace %d: folded server stages %dns > e2e %dns", rec.TraceID, srv, rec.End2End)
		}
		for _, st := range []trace.Stage{trace.StageIssue, trace.StageWrite, trace.StageAwait, trace.StageDecode} {
			if rec.Stages[st] <= 0 {
				t.Errorf("trace %d: client stage %v empty", rec.TraceID, st)
			}
		}
		srv, ok := serverByID[rec.TraceID]
		if !ok {
			t.Errorf("trace %d: no matching server record", rec.TraceID)
			continue
		}
		// The folded block and the server's own record come from the same
		// measurements (reply excepted — it's measured after the block is
		// sent), so the shared stages must agree exactly.
		for _, st := range []trace.Stage{trace.StageAdmit, trace.StageQueue, trace.StageAssembly, trace.StageService, trace.StageEncode} {
			if rec.Stages[st] != srv.Stages[st] {
				t.Errorf("trace %d stage %v: folded %dns != server %dns", rec.TraceID, st, rec.Stages[st], srv.Stages[st])
			}
		}
	}
}

// TestTracedClientUntracedServer: a traced client against a server with no
// tracer degrades gracefully — the server answers with plain V1 response
// frames, nothing drops, and client records simply lack the server block.
func TestTracedClientUntracedServer(t *testing.T) {
	clientTr := trace.New(trace.Config{SampleEvery: 1})
	client, server := tracedSweep(t, clientTr, nil)
	if len(server) != 0 {
		t.Fatalf("nil server tracer produced %d records", len(server))
	}
	if len(client) == 0 {
		t.Fatal("client ring empty")
	}
	for _, rec := range client {
		if rec.HasServer {
			t.Fatalf("trace %d: server block from an untraced server", rec.TraceID)
		}
		if rec.TraceID == 0 || rec.End2End <= 0 {
			t.Fatalf("malformed client record %+v", rec)
		}
	}
}

// TestUntracedClientTracedServer: an untraced client never emits V3 frames,
// so a traced server sees only untraced requests; its ring holds at most
// tail-capture records (trace id 0) and the sweep still completes cleanly.
func TestUntracedClientTracedServer(t *testing.T) {
	serverTr := trace.New(trace.Config{SampleEvery: 1})
	client, server := tracedSweep(t, nil, serverTr)
	if len(client) != 0 {
		t.Fatalf("nil client tracer produced %d records", len(client))
	}
	for _, rec := range server {
		if rec.TraceID != 0 {
			t.Fatalf("untraced client yielded a traced server record %d", rec.TraceID)
		}
		if !rec.Tail {
			t.Fatalf("non-tail record %+v on the untraced path", rec)
		}
	}
}
