package audit

import (
	"fmt"

	"mlperf/internal/trace"
)

// traceSkewSlack absorbs the wall-clock granularity between the client's
// issue timestamp and the server's arrival timestamp when checking that a
// folded server span nests inside its client span. The two ends read
// time.Now() independently, so a sub-millisecond disagreement is measurement
// noise, not a malformed trace.
const traceSkewSlack = int64(1_000_000) // 1ms in nanos

// checkTraces verifies the run's span trees are well-formed — observability
// output is audit evidence here, so a trace that cannot have been measured
// (negative stage, stages summing past the end-to-end span, a server block
// outside its client span, a retained record that is neither head-sampled
// nor a tail outlier) fails the run's trace finding.
func checkTraces(records []trace.Record) Finding {
	clients, servers := 0, 0
	for i, rec := range records {
		where := fmt.Sprintf("trace record %d (id %d, model %q)", i, rec.TraceID, rec.Model)
		if rec.Origin != trace.OriginClient && rec.Origin != trace.OriginServer {
			return Finding{Name: "serving-trace", Pass: false,
				Detail: fmt.Sprintf("%s: unknown origin %d", where, rec.Origin)}
		}
		if rec.Start <= 0 || rec.End2End <= 0 {
			return Finding{Name: "serving-trace", Pass: false,
				Detail: fmt.Sprintf("%s: non-positive start %d or end-to-end %d", where, rec.Start, rec.End2End)}
		}
		if rec.TraceID == 0 && !rec.Tail {
			return Finding{Name: "serving-trace", Pass: false,
				Detail: where + ": retained without a trace id or a tail flag — neither head-sampled nor an outlier"}
		}
		for st := trace.Stage(0); st < trace.NumStages; st++ {
			if rec.Stages[st] < 0 {
				return Finding{Name: "serving-trace", Pass: false,
					Detail: fmt.Sprintf("%s: negative %s span %dns", where, st, rec.Stages[st])}
			}
		}
		switch rec.Origin {
		case trace.OriginClient:
			clients++
			if sum := rec.ClientNanos(); sum > rec.End2End {
				return Finding{Name: "serving-trace", Pass: false,
					Detail: fmt.Sprintf("%s: client stages sum to %dns, beyond the %dns end-to-end span", where, sum, rec.End2End)}
			}
			if rec.HasServer {
				if rec.ServerStart <= 0 {
					return Finding{Name: "serving-trace", Pass: false,
						Detail: where + ": server block folded in without a server start time"}
				}
				srv := rec.ServerNanos()
				if srv > rec.End2End {
					return Finding{Name: "serving-trace", Pass: false,
						Detail: fmt.Sprintf("%s: folded server stages span %dns, beyond the %dns end-to-end span", where, srv, rec.End2End)}
				}
				// The server span must nest inside the client span: it starts
				// after issue and ends before the response lands (modulo
				// wall-clock read granularity between the two ends).
				if rec.ServerStart+traceSkewSlack < rec.Start {
					return Finding{Name: "serving-trace", Pass: false,
						Detail: fmt.Sprintf("%s: server span starts %dns before the client issued", where, rec.Start-rec.ServerStart)}
				}
				if end := rec.ServerStart + srv; end > rec.Start+rec.End2End+traceSkewSlack {
					return Finding{Name: "serving-trace", Pass: false,
						Detail: fmt.Sprintf("%s: server span ends %dns after the client span closed", where, end-(rec.Start+rec.End2End))}
				}
			}
		case trace.OriginServer:
			servers++
			if rec.HasServer {
				return Finding{Name: "serving-trace", Pass: false,
					Detail: where + ": server-origin record claims a folded server block"}
			}
			if srv := rec.ServerNanos(); srv > rec.End2End {
				return Finding{Name: "serving-trace", Pass: false,
					Detail: fmt.Sprintf("%s: server stages sum to %dns, beyond the %dns end-to-end span", where, srv, rec.End2End)}
			}
		}
	}
	return Finding{Name: "serving-trace", Pass: true,
		Detail: fmt.Sprintf("%d trace records (%d client, %d server): spans well-formed, stage sums bounded, server blocks nested", len(records), clients, servers)}
}
