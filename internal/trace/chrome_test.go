package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Chrome trace-event golden file")

// goldenRecords is a fixed dump exercising every export shape: a fully
// traced client record with folded server spans, a server-origin record,
// and an untraced tail capture with only an end-to-end latency.
func goldenRecords() []Record {
	base := int64(1_700_000_000_000_000_000)
	return []Record{
		{
			TraceID: 64, Model: "resnet", Origin: OriginClient,
			Start: base, End2End: 5_000_000, Tail: false,
			HasServer: true, ServerStart: base + 400_000,
			Stages: stageSet(map[Stage]int64{
				StageIssue: 50_000, StageAcquire: 20_000, StageWrite: 80_000,
				StageAwait: 4_500_000, StageDecode: 30_000,
				StageAdmit: 10_000, StageQueue: 1_200_000, StageAssembly: 90_000,
				StageService: 2_600_000, StageEncode: 40_000,
			}),
		},
		{
			TraceID: 64, Model: "resnet", Origin: OriginServer,
			Start: base + 400_000, End2End: 4_100_000,
			Stages: stageSet(map[Stage]int64{
				StageAdmit: 10_000, StageQueue: 1_200_000, StageAssembly: 90_000,
				StageService: 2_600_000, StageEncode: 40_000, StageReply: 160_000,
			}),
		},
		{
			Model: "gnmt", Origin: OriginClient,
			Start: base + 2_000_000, End2End: 48_000_000, Tail: true,
		},
	}
}

// TestChromeGolden pins the trace-event JSON schema: the golden file is a
// dump Perfetto has to keep opening, so any byte-level drift here is an
// intentional schema change (regenerate with -update).
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenRecords()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome export drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeShape checks the structural invariants Perfetto needs
// independent of the golden bytes: one top-level traceEvents array, "X"
// events with non-negative ts/dur, and metadata naming both pids.
func TestChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenRecords()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var dump struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Ts    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			Pid   int     `json:"pid"`
			Tid   uint64  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if dump.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", dump.DisplayTimeUnit)
	}
	meta, spans := 0, 0
	for _, ev := range dump.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			spans++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("span %q has negative ts/dur: %+v", ev.Name, ev)
			}
			if ev.Pid != chromePidClient && ev.Pid != chromePidServer {
				t.Fatalf("span %q has unknown pid %d", ev.Name, ev.Pid)
			}
			if ev.Tid == 0 {
				t.Fatalf("span %q has zero tid", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if meta != 2 {
		t.Fatalf("want 2 process_name metadata events, got %d", meta)
	}
	// 1 client request + 10 client/server folded stages, 1 server request
	// + 6 server stages, 1 tail request with no stages.
	if want := 19; spans != want {
		t.Fatalf("want %d span events, got %d", want, spans)
	}
	// An empty dump still emits valid JSON.
	buf.Reset()
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
}
