package stats

import (
	"testing"
	"testing/quick"
)

// TestTableIV reproduces Table IV of the paper exactly: the statistically
// required inference counts and their rounding to multiples of 2^13.
func TestTableIV(t *testing.T) {
	rows, err := TableIV()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		tail       float64
		margin     float64
		inferences int
		rounded    int
	}{
		{0.90, 0.005, 23886, 24576},
		{0.95, 0.0025, 50425, 57344},
		{0.99, 0.0005, 262742, 270336},
	}
	if len(rows) != len(want) {
		t.Fatalf("TableIV returned %d rows, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.TailPercentile != w.tail {
			t.Errorf("row %d: tail = %v, want %v", i, r.TailPercentile, w.tail)
		}
		if diff := r.Margin - w.margin; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("row %d: margin = %v, want %v", i, r.Margin, w.margin)
		}
		// Allow the exact integer to differ by at most 1 from the paper due
		// to rounding of the normal quantile; the rounded block count must be
		// identical.
		if r.Inferences < w.inferences-1 || r.Inferences > w.inferences+1 {
			t.Errorf("row %d: inferences = %d, want %d (±1)", i, r.Inferences, w.inferences)
		}
		if r.Rounded != w.rounded {
			t.Errorf("row %d: rounded = %d, want %d", i, r.Rounded, w.rounded)
		}
	}
}

func TestMarginEquation(t *testing.T) {
	m, err := Margin(0.90)
	if err != nil {
		t.Fatal(err)
	}
	if diff := m - 0.005; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Margin(0.90) = %v, want 0.005", m)
	}
	if _, err := Margin(1.0); err == nil {
		t.Error("Margin(1.0): expected error")
	}
	if _, err := Margin(0); err == nil {
		t.Error("Margin(0): expected error")
	}
}

func TestMinQueriesErrors(t *testing.T) {
	if _, err := MinQueries(0.9, 0.99, 0); err == nil {
		t.Error("zero margin: expected error")
	}
	if _, err := MinQueries(1.2, 0.99, 0.01); err == nil {
		t.Error("invalid tail: expected error")
	}
	if _, err := MinQueries(0.9, 1.2, 0.01); err == nil {
		t.Error("invalid confidence: expected error")
	}
}

func TestRoundToBlock(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 8192},
		{-5, 8192},
		{1, 8192},
		{8192, 8192},
		{8193, 16384},
		{23886, 24576},
		{50425, 57344},
		{262742, 270336},
	}
	for _, c := range cases {
		if got := RoundToBlock(c.in); got != c.want {
			t.Errorf("RoundToBlock(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRoundToBlockProperties(t *testing.T) {
	f := func(n int) bool {
		if n > 1<<30 || n < -(1<<30) {
			return true
		}
		r := RoundToBlock(n)
		if r%QueryBlock != 0 {
			return false
		}
		if r < n {
			return false
		}
		// Tight: the previous block would be too small (when n is positive).
		if n > 0 && r-QueryBlock >= n {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMinQueriesMonotoneInTailTightness(t *testing.T) {
	// Tighter tails (closer to 1) with the Equation-1 margin need more queries.
	prev := 0
	for _, p := range []float64{0.5, 0.9, 0.95, 0.97, 0.99, 0.999} {
		m, err := Margin(p)
		if err != nil {
			t.Fatal(err)
		}
		n, err := MinQueries(p, 0.99, m)
		if err != nil {
			t.Fatal(err)
		}
		if n <= prev {
			t.Errorf("MinQueries not increasing at tail %v: %d <= %d", p, n, prev)
		}
		prev = n
	}
}
