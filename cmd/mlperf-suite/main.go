// Command mlperf-suite runs the full closed-division suite (every task under
// every scenario) against the native reference implementation, builds a
// submission, checks it with the submission checker and prints the report.
//
// A full production run takes hours by design (Table V requires hundreds of
// thousands of queries); the -scale flag divides the query counts and minimum
// duration so the whole suite completes in seconds for demonstration.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/submission"
)

func main() {
	var (
		scale     = flag.Int("scale", 1024, "divide production query counts and durations by this factor")
		samples   = flag.Int("samples", 64, "synthetic data-set size per task")
		seed      = flag.Uint64("seed", 42, "model/data seed")
		submitter = flag.String("submitter", "reference", "submitter name recorded in the submission")
	)
	flag.Parse()

	sub := submission.Submission{Submitter: *submitter}
	for _, task := range core.AllTasks() {
		assembly, err := harness.BuildNative(task, harness.BuildOptions{DatasetSamples: *samples, Seed: *seed, Workers: 4})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s (reference quality %.4f, target %.4f)\n", task, assembly.ReferenceQuality, assembly.QualityTarget)
		// The single-stream scenario runs first; its mean latency is used to
		// size the offered load of the latency-bound scenarios, the same way
		// submitters tune target QPS and stream counts to their system.
		var singleStreamMean time.Duration
		for _, scenario := range loadgen.AllScenarios() {
			settings := harness.QuickSettings(assembly.Spec, scenario, *scale)
			if settings.MinDuration > 500*time.Millisecond {
				settings.MinDuration = 500 * time.Millisecond
			}
			// Wall-clock compression for the demo: the production multistream
			// arrival interval (50-100 ms) would stretch even a scaled run
			// into minutes, and the offered server load must match what the
			// pure-Go backend on this machine can actually serve.
			perQuery := 2 * time.Millisecond
			if singleStreamMean > 0 {
				perQuery = singleStreamMean
			}
			effectiveWorkers := 4.0
			if cpus := float64(runtime.NumCPU()); cpus < effectiveWorkers {
				effectiveWorkers = cpus
			}
			switch scenario {
			case loadgen.MultiStream:
				settings.MultiStreamSamplesPerQuery = 1
				settings.MultiStreamArrivalInterval = clampDuration(8*perQuery, 10*time.Millisecond, 60*time.Millisecond)
			case loadgen.Server:
				settings.ServerTargetQPS = 0.35 * effectiveWorkers / perQuery.Seconds()
				settings.ServerTargetLatency = clampDuration(25*perQuery, 50*time.Millisecond, 250*time.Millisecond)
			case loadgen.Offline:
				settings.MinDuration = 0
			}
			report, err := harness.Run(assembly, harness.RunOptions{
				Scenario: scenario, Settings: &settings, RunAccuracy: true,
			})
			if err != nil {
				fatal(fmt.Errorf("%s/%v: %w", task, scenario, err))
			}
			perf := report.Performance
			if scenario == loadgen.SingleStream && perf.QueryLatencies.Mean > 0 {
				singleStreamMean = perf.QueryLatencies.Mean
			}
			fmt.Printf("   %-13s metric %10.4g (%s)  valid=%v  quality=%.4f\n",
				scenario, perf.MetricValue(), perf.MetricName(), perf.Valid, report.Accuracy.Value)

			sub.Entries = append(sub.Entries, submission.Entry{
				System: submission.SystemDescription{
					Name: "reference-native", Submitter: *submitter, ProcessorType: "CPU",
					HostProcessors: 1, Framework: "mlperf-go-native", SoftwareStack: "go",
				},
				Division:    submission.Closed,
				Category:    submission.RDO,
				Task:        task,
				Scenario:    scenario,
				ModelUsed:   string(assembly.Spec.ReferenceModel),
				Performance: perf,
				Accuracy:    report.Accuracy,
			})
		}
	}

	issues, cleared := submission.Check(sub, submission.CheckOptions{ScaleFactor: *scale})
	fmt.Println()
	fmt.Println(submission.Report(sub))
	fmt.Printf("submission checker: %d/%d entries cleared as valid, %d issues\n", cleared, len(sub.Entries), len(issues))
	for _, issue := range issues {
		fmt.Println("  -", issue)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlperf-suite:", err)
	os.Exit(1)
}

// clampDuration bounds d to [lo, hi].
func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
