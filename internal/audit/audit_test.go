package audit

import (
	"sync"
	"testing"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/payload"
)

// auditQSL is a minimal in-memory query sample library.
type auditQSL struct {
	total int
}

func (q *auditQSL) Name() string                             { return "audit-qsl" }
func (q *auditQSL) TotalSampleCount() int                    { return q.total }
func (q *auditQSL) PerformanceSampleCount() int              { return q.total }
func (q *auditQSL) LoadSamplesToRAM(indices []int) error     { return nil }
func (q *auditQSL) UnloadSamplesFromRAM(indices []int) error { return nil }

// honestSUT answers every sample after a fixed service time with a
// deterministic payload derived from the sample index.
type honestSUT struct {
	latency time.Duration
}

func (s *honestSUT) Name() string { return "honest" }

func (s *honestSUT) IssueQuery(q *loadgen.Query) {
	go func() {
		if s.latency > 0 {
			time.Sleep(s.latency)
		}
		responses := make([]loadgen.Response, len(q.Samples))
		for i, smp := range q.Samples {
			data, _ := payload.EncodeClass(smp.Index % 7)
			responses[i] = loadgen.Response{SampleID: smp.ID, Data: data}
		}
		q.Complete(responses)
	}()
}

func (s *honestSUT) FlushQueries() {}

// flakySUT returns different answers in performance mode than it logged in
// accuracy mode by keying its answer on an internal counter, which the
// accuracy-verification audit must catch.
type flakySUT struct {
	mu      sync.Mutex
	counter int
}

func (s *flakySUT) Name() string { return "flaky" }

func (s *flakySUT) IssueQuery(q *loadgen.Query) {
	s.mu.Lock()
	s.counter++
	c := s.counter
	s.mu.Unlock()
	responses := make([]loadgen.Response, len(q.Samples))
	for i, smp := range q.Samples {
		data, _ := payload.EncodeClass(c % 5)
		responses[i] = loadgen.Response{SampleID: smp.ID, Data: data}
	}
	q.Complete(responses)
}

func (s *flakySUT) FlushQueries() {}

// cachingSUT memoizes responses per sample index: repeated samples are served
// much faster, which the rules prohibit.
type cachingSUT struct {
	mu   sync.Mutex
	seen map[int]bool
	slow time.Duration
	fast time.Duration
}

func newCachingSUT() *cachingSUT {
	// The gap between the cached and uncached paths is deliberately large so
	// the test is insensitive to sleep granularity on slow CI machines.
	return &cachingSUT{seen: make(map[int]bool), slow: 5 * time.Millisecond, fast: 0}
}

func (s *cachingSUT) Name() string { return "caching" }

func (s *cachingSUT) IssueQuery(q *loadgen.Query) {
	go func() {
		for _, smp := range q.Samples {
			s.mu.Lock()
			cached := s.seen[smp.Index]
			s.seen[smp.Index] = true
			s.mu.Unlock()
			if cached {
				time.Sleep(s.fast)
			} else {
				time.Sleep(s.slow)
			}
			data, _ := payload.EncodeClass(smp.Index % 7)
			q.Complete([]loadgen.Response{{SampleID: smp.ID, Data: data}})
		}
	}()
}

func (s *cachingSUT) FlushQueries() {}

// seedTunedSUT is fast only while the incoming sample-index stream follows a
// memorized expected sequence (an optimization tuned to the official seed).
type seedTunedSUT struct {
	mu       sync.Mutex
	expected []int
	pos      int
}

func (s *seedTunedSUT) Name() string { return "seed-tuned" }

func (s *seedTunedSUT) IssueQuery(q *loadgen.Query) {
	go func() {
		for _, smp := range q.Samples {
			s.mu.Lock()
			onScript := s.pos < len(s.expected) && s.expected[s.pos] == smp.Index
			s.pos++
			s.mu.Unlock()
			if !onScript {
				time.Sleep(5 * time.Millisecond)
			}
			data, _ := payload.EncodeClass(smp.Index % 7)
			q.Complete([]loadgen.Response{{SampleID: smp.ID, Data: data}})
		}
	}()
}

func (s *seedTunedSUT) FlushQueries() {}

// recordingSUT captures the sample-index traffic so tests can build a
// seed-tuned cheater.
type recordingSUT struct {
	mu      sync.Mutex
	indices []int
}

func (s *recordingSUT) Name() string { return "recording" }

func (s *recordingSUT) IssueQuery(q *loadgen.Query) {
	responses := make([]loadgen.Response, len(q.Samples))
	s.mu.Lock()
	for i, smp := range q.Samples {
		s.indices = append(s.indices, smp.Index)
		data, _ := payload.EncodeClass(smp.Index % 7)
		responses[i] = loadgen.Response{SampleID: smp.ID, Data: data}
	}
	s.mu.Unlock()
	q.Complete(responses)
}

func (s *recordingSUT) FlushQueries() {}

func auditSettings() loadgen.TestSettings {
	ts := loadgen.DefaultSettings(loadgen.SingleStream)
	ts.MinQueryCount = 60
	ts.MinDuration = 0
	return ts
}

func TestSuiteValidation(t *testing.T) {
	qsl := &auditQSL{total: 32}
	if _, err := (Suite{QSL: qsl, Settings: auditSettings()}).AccuracyVerification(); err == nil {
		t.Error("nil SUT: expected error")
	}
	if _, err := (Suite{SUT: &honestSUT{}, Settings: auditSettings()}).AccuracyVerification(); err == nil {
		t.Error("nil QSL: expected error")
	}
	bad := auditSettings()
	bad.MinQueryCount = 0
	if _, err := (Suite{SUT: &honestSUT{}, QSL: qsl, Settings: bad}).AccuracyVerification(); err == nil {
		t.Error("invalid settings: expected error")
	}
}

func TestAccuracyVerificationPassesHonestSUT(t *testing.T) {
	s := Suite{SUT: &honestSUT{}, QSL: &auditQSL{total: 32}, Settings: auditSettings()}
	f, err := s.AccuracyVerification()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Pass {
		t.Errorf("honest SUT failed accuracy verification: %s", f.Detail)
	}
	if f.String() == "" {
		t.Error("empty finding string")
	}
}

func TestAccuracyVerificationCatchesInconsistentSUT(t *testing.T) {
	s := Suite{SUT: &flakySUT{}, QSL: &auditQSL{total: 32}, Settings: auditSettings()}
	f, err := s.AccuracyVerification()
	if err != nil {
		t.Fatal(err)
	}
	if f.Pass {
		t.Error("inconsistent SUT passed accuracy verification")
	}
}

func TestCachingDetection(t *testing.T) {
	honest := Suite{SUT: &honestSUT{latency: 2 * time.Millisecond}, QSL: &auditQSL{total: 32}, Settings: auditSettings()}
	f, err := honest.CachingDetection(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Pass {
		t.Errorf("honest SUT flagged for caching: %s", f.Detail)
	}

	caching := Suite{SUT: newCachingSUT(), QSL: &auditQSL{total: 32}, Settings: auditSettings()}
	f2, err := caching.CachingDetection(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Pass {
		t.Errorf("caching SUT not detected: %s", f2.Detail)
	}

	if _, err := honest.CachingDetection(0.9); err == nil {
		t.Error("threshold below 1: expected error")
	}
}

func TestAlternateSeed(t *testing.T) {
	settings := auditSettings()
	qsl := &auditQSL{total: 64}

	honest := Suite{SUT: &honestSUT{latency: 2 * time.Millisecond}, QSL: qsl, Settings: settings}
	f, err := honest.AlternateSeed([]uint64{123, 456}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Pass {
		t.Errorf("honest SUT failed alternate-seed audit: %s", f.Detail)
	}

	// Build a cheater tuned to the official traffic: record the official
	// sample-index stream, then answer fast only along that exact stream.
	recorder := &recordingSUT{}
	if _, err := loadgen.StartTest(recorder, qsl, settings); err != nil {
		t.Fatal(err)
	}
	cheater := &seedTunedSUT{expected: recorder.indices}
	tuned := Suite{SUT: cheater, QSL: qsl, Settings: settings}
	f2, err := tuned.AlternateSeed([]uint64{99991}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Pass {
		t.Errorf("seed-tuned SUT not detected: %s", f2.Detail)
	}

	if _, err := honest.AlternateSeed(nil, 0.5); err == nil {
		t.Error("no alternate seeds: expected error")
	}
	if _, err := honest.AlternateSeed([]uint64{1}, 0); err == nil {
		t.Error("zero tolerance: expected error")
	}
}

func TestRunAllAndAllPassed(t *testing.T) {
	s := Suite{SUT: &honestSUT{latency: 200 * time.Microsecond}, QSL: &auditQSL{total: 32}, Settings: auditSettings()}
	findings, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("expected 3 findings, got %d", len(findings))
	}
	if !AllPassed(findings) {
		for _, f := range findings {
			t.Log(f)
		}
		t.Error("honest SUT failed the audit battery")
	}
	if AllPassed(nil) {
		t.Error("empty findings must not count as passed")
	}
	if AllPassed([]Finding{{Pass: true}, {Pass: false}}) {
		t.Error("mixed findings must not count as passed")
	}
}
