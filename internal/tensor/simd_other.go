//go:build !amd64

package tensor

// Portable fallback for the SIMD dispatch layer: no microkernels exist, so
// the supported tier is always SIMDOff and the kernel entry points are
// unreachable stubs (gemm.go only calls them when ActiveSIMD() != SIMDOff,
// which clampSIMD makes impossible here). This file is what the non-amd64
// cross-build check in CI proves complete.

// detectSIMD reports that no SIMD tier is available on this architecture.
func detectSIMD() SIMDTier { return SIMDOff }

func simdGEMM4(tier SIMDTier, c0, c1, c2, c3, a0, a1, a2, a3, b *float32, k, bStride, jn int) {
	panic("tensor: SIMD kernel dispatched on non-amd64")
}

func simdGEMM1(tier SIMDTier, c0, a0, b *float32, k, bStride, jn int) {
	panic("tensor: SIMD kernel dispatched on non-amd64")
}

func simdDot(a, x *float32, k int) float32 {
	panic("tensor: SIMD kernel dispatched on non-amd64")
}
