// Command mlperf-checker runs the result-review process of Section V-B
// against the reference submission system: it executes the audit battery
// (accuracy verification, caching detection, alternate random seeds), the
// serving conformance suite (a sharded loopback deployment whose run must
// reconcile drops and latency-bound validity across replicas), and the
// submission checker, and reports whether the system would clear review.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlperf/internal/audit"
	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
	"mlperf/internal/submission"
	"mlperf/internal/trace"
)

func main() {
	var (
		taskName = flag.String("task", string(core.ImageClassificationLight), "task to audit")
		samples  = flag.Int("samples", 64, "synthetic data-set size")
		scale    = flag.Int("scale", 64, "divide production query counts by this factor")
		seed     = flag.Uint64("seed", 42, "model/data seed")
		replicas = flag.Int("serving-replicas", 2, "loopback replicas for the serving conformance run (0 skips it)")
	)
	flag.Parse()

	task := core.Task(*taskName)
	assembly, err := harness.BuildNative(task, harness.BuildOptions{DatasetSamples: *samples, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	settings := harness.QuickSettings(assembly.Spec, loadgen.SingleStream, *scale)
	settings.MinDuration = 100 * time.Millisecond

	fmt.Printf("auditing %s on %s\n\n", task, assembly.SUT.Name())
	suite := audit.Suite{SUT: assembly.SUT, QSL: assembly.QSL, Settings: settings}
	findings, err := suite.RunAll()
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}

	// Serving conformance: the same engine behind a sharded loopback fleet
	// must satisfy the run rules over the wire — rejects/expiries reconciled
	// across every replica, drops invalidating, latency verdict reproducible.
	if *replicas > 0 {
		servingFindings, err := servingConformance(assembly, *replicas)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		for _, f := range servingFindings {
			fmt.Println(f)
		}
		findings = append(findings, servingFindings...)
	}

	// Also run one scenario end to end and push the result through the
	// submission checker so reviewers see the full pipeline.
	report, err := harness.Run(assembly, harness.RunOptions{
		Scenario: loadgen.SingleStream, Settings: &settings, RunAccuracy: true,
	})
	if err != nil {
		fatal(err)
	}
	entry := submission.Entry{
		System: submission.SystemDescription{
			Name: "reference-native", Submitter: "reference", ProcessorType: "CPU",
			HostProcessors: 1, Framework: "mlperf-go-native",
		},
		Division:    submission.Closed,
		Category:    submission.RDO,
		Task:        task,
		Scenario:    loadgen.SingleStream,
		ModelUsed:   string(assembly.Spec.ReferenceModel),
		Performance: report.Performance,
		Accuracy:    report.Accuracy,
	}
	issues := submission.CheckEntry(0, entry, submission.CheckOptions{ScaleFactor: *scale})
	fmt.Printf("\nsubmission checker issues: %d\n", len(issues))
	for _, issue := range issues {
		fmt.Println("  -", issue)
	}

	if !audit.AllPassed(findings) || len(issues) > 0 {
		fmt.Println("\nRESULT: review FAILED")
		os.Exit(2)
	}
	fmt.Println("\nRESULT: review passed — submission would be cleared as valid")
}

// servingConformance deploys the assembly behind a loopback replica fleet,
// drives a Server-scenario run through it — traced at 1/4 sampling on both
// sides so the span trees themselves become audit evidence — and checks the
// serving run rules. The captured traces also feed the tail-attribution
// report, which names the stage class dominating the run's slowest requests.
func servingConformance(assembly *harness.Assembly, replicas int) ([]audit.Finding, error) {
	clientTr := trace.New(trace.Config{SampleEvery: 4})
	serverTr := trace.New(trace.Config{SampleEvery: 4})
	dep, err := assembly.ServeLoopback(harness.ServeOptions{
		Replicas: replicas,
		Server:   serve.Config{BatchWait: time.Millisecond, Tracer: serverTr},
		Client:   backend.RemoteConfig{MaxInFlight: 64, Tracer: clientTr},
	})
	if err != nil {
		return nil, err
	}
	defer dep.Close()

	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 128
	settings.MinDuration = 200 * time.Millisecond
	settings.ServerTargetQPS = 200
	settings.ServerTargetLatency = 250 * time.Millisecond
	res, err := loadgen.StartTest(dep.Remote, assembly.QSL, settings)
	if err != nil {
		return nil, fmt.Errorf("serving conformance run: %w", err)
	}
	dep.Remote.Wait()
	fmt.Printf("\nserving conformance: %d replicas, %d queries, %.0f QPS achieved\n",
		replicas, res.QueriesCompleted, res.ServerAchievedQPS)
	traces := append(clientTr.Records(), serverTr.Records()...)
	fmt.Println(trace.Attribute(traces))
	rec := dep.Remote.Recovery()
	return audit.CheckServing(audit.ServingEvidence{
		Result:               res,
		Settings:             settings,
		ClientRejected:       dep.Remote.Rejected(),
		ClientExpired:        dep.Remote.Expired(),
		ClientTransportDrops: dep.Remote.TransportDrops(),
		Recovery:             &rec,
		Replicas:             dep.ReplicaMetrics(),
		Traces:               traces,
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlperf-checker:", err)
	os.Exit(1)
}
