package stats

import (
	"fmt"
	"time"
)

// PoissonProcess generates the inter-arrival gaps of a homogeneous Poisson
// process, which the server scenario uses to schedule query arrivals
// (Section III-C: "queries have one sample each, in accordance with a Poisson
// distribution").
type PoissonProcess struct {
	rng  *RNG
	rate float64 // expected queries per second
}

// NewPoissonProcess returns a Poisson arrival process with the given expected
// rate in queries per second.
func NewPoissonProcess(rng *RNG, queriesPerSecond float64) (*PoissonProcess, error) {
	if queriesPerSecond <= 0 {
		return nil, fmt.Errorf("stats: Poisson rate must be positive, got %v", queriesPerSecond)
	}
	if rng == nil {
		rng = NewRNG(0)
	}
	return &PoissonProcess{rng: rng, rate: queriesPerSecond}, nil
}

// Rate returns the expected arrival rate in queries per second.
func (p *PoissonProcess) Rate() float64 { return p.rate }

// NextGap returns the next exponential inter-arrival gap.
func (p *PoissonProcess) NextGap() time.Duration {
	seconds := p.rng.ExpFloat64() / p.rate
	return time.Duration(seconds * float64(time.Second))
}

// Schedule returns the absolute arrival offsets (from the start of the run)
// of the first n queries. Precomputing the schedule mirrors the C++ LoadGen,
// which builds the query schedule ahead of the timed portion of the run so
// that traffic generation does not perturb the measurement.
func (p *PoissonProcess) Schedule(n int) []time.Duration {
	out := make([]time.Duration, n)
	var t time.Duration
	for i := 0; i < n; i++ {
		t += p.NextGap()
		out[i] = t
	}
	return out
}

// UniformProcess generates fixed inter-arrival gaps, used by the multistream
// scenario ("we send a new query comprising N input samples at a fixed time
// interval").
type UniformProcess struct {
	interval time.Duration
}

// NewUniformProcess returns an arrival process with a constant gap.
func NewUniformProcess(interval time.Duration) (*UniformProcess, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("stats: uniform arrival interval must be positive, got %v", interval)
	}
	return &UniformProcess{interval: interval}, nil
}

// Interval returns the constant arrival interval.
func (u *UniformProcess) Interval() time.Duration { return u.interval }

// Schedule returns the absolute arrival offsets of the first n queries.
func (u *UniformProcess) Schedule(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		out[i] = time.Duration(i+1) * u.interval
	}
	return out
}
