// Command mlperf-loadgen runs one benchmark: a task and scenario against
// either the native reference implementation or a simulated platform from the
// catalogue, in performance mode and optionally accuracy mode.
//
// Examples:
//
//	mlperf-loadgen -task image-classification-light -scenario SingleStream
//	mlperf-loadgen -task machine-translation -scenario Offline -accuracy
//	mlperf-loadgen -task image-classification-heavy -scenario Server \
//	    -backend simulated -platform dc-gpu-g1 -scale 256
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/quantize"
	"mlperf/internal/simhw"
)

func main() {
	var (
		taskName     = flag.String("task", string(core.ImageClassificationLight), "benchmark task")
		scenarioName = flag.String("scenario", "SingleStream", "SingleStream, MultiStream, Server or Offline")
		backendName  = flag.String("backend", "native", "native or simulated")
		platformName = flag.String("platform", "desktop-cpu-c1", "simulated platform (with -backend simulated)")
		accuracyRun  = flag.Bool("accuracy", false, "also run accuracy mode and score quality")
		scale        = flag.Int("scale", 128, "divide the production query counts and duration by this factor (1 = full production run)")
		samples      = flag.Int("samples", 128, "synthetic data-set size")
		seed         = flag.Uint64("seed", 42, "model/data seed")
		format       = flag.String("quantize", "", "optional weight format from the approved list (e.g. int8)")
	)
	flag.Parse()

	scenario, err := parseScenario(*scenarioName)
	if err != nil {
		fatal(err)
	}
	task := core.Task(*taskName)
	spec, err := core.Spec(task)
	if err != nil {
		fatal(err)
	}

	assembly, err := harness.BuildNative(task, harness.BuildOptions{
		DatasetSamples: *samples,
		Seed:           *seed,
		Quantization:   quantize.Format(strings.ToLower(*format)),
	})
	if err != nil {
		fatal(err)
	}

	// Optionally swap the SUT for a simulated platform while keeping the
	// task's data set and settings.
	if *backendName == "simulated" {
		platform, err := simhw.FindPlatform(*platformName)
		if err != nil {
			fatal(err)
		}
		workload, ok := simhw.StandardWorkloads()[string(spec.ReferenceModel)]
		if !ok {
			fatal(fmt.Errorf("no standard workload for %s", spec.ReferenceModel))
		}
		sut, err := backend.NewSimulated(backend.SimulatedConfig{
			Platform: platform, Workload: workload, TimeScale: 100, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		assembly.SUT = sut
	} else if *backendName != "native" {
		fatal(fmt.Errorf("unknown backend %q (want native or simulated)", *backendName))
	}

	settings := harness.QuickSettings(spec, scenario, *scale)
	report, err := harness.Run(assembly, harness.RunOptions{
		Scenario:    scenario,
		Settings:    &settings,
		RunAccuracy: *accuracyRun && *backendName == "native",
	})
	if err != nil {
		fatal(err)
	}

	perf := report.Performance
	fmt.Printf("task:        %s\n", task)
	fmt.Printf("scenario:    %s\n", scenario)
	fmt.Printf("SUT:         %s\n", report.SUTName)
	fmt.Printf("queries:     %d issued, %d completed\n", perf.QueriesIssued, perf.QueriesCompleted)
	fmt.Printf("duration:    %v\n", perf.TestDuration)
	fmt.Printf("metric:      %.4g (%s)\n", perf.MetricValue(), perf.MetricName())
	fmt.Printf("p50/p90/p99: %v / %v / %v\n", perf.QueryLatencies.P50, perf.QueryLatencies.P90, perf.QueryLatencies.P99)
	fmt.Printf("valid:       %v %v\n", perf.Valid, perf.ValidityMessages)
	if report.Accuracy != nil {
		fmt.Printf("accuracy:    %s\n", report.Accuracy)
	}
	if !report.Valid() {
		os.Exit(2)
	}
}

func parseScenario(name string) (loadgen.Scenario, error) {
	for _, s := range loadgen.AllScenarios() {
		if strings.EqualFold(s.String(), name) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("unknown scenario %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mlperf-loadgen:", err)
	os.Exit(1)
}
