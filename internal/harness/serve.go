package harness

import (
	"fmt"

	"mlperf/internal/backend"
	"mlperf/internal/serve"
)

// ServeOptions configures ServeLoopback. Zero fields inherit the assembly:
// each server replica serves the assembly's engine from its QSL, and the
// client dials the freshly bound addresses.
type ServeOptions struct {
	// Replicas is how many loopback servers to deploy (default 1). Every
	// replica serves the same engine and data set, and the client fans out
	// over all of them with least-in-flight routing — outputs stay
	// bit-identical because the replicas are identical by construction.
	Replicas int
	// Server configures each serve.Server. Engine and Store are filled in
	// from the assembly when unset. Addr must stay empty when Replicas > 1
	// (each replica binds its own kernel-assigned loopback port).
	Server serve.Config
	// Client configures the backend.Remote that drives the fleet. Addr/Addrs
	// are always overwritten with the servers' bound addresses.
	Client backend.RemoteConfig
}

// LoopbackDeployment is a running fleet of serve.Servers with a connected
// Remote SUT wired into a derived Assembly: the same task, data set, settings
// and quality targets, but inference crossing a real network boundary and
// fanned out over N replicas.
type LoopbackDeployment struct {
	// Assembly mirrors the source assembly with SUT swapped for the Remote.
	Assembly *Assembly
	// Server is the first replica, kept for single-replica callers.
	Server *serve.Server
	// Servers is the whole replica fleet in address order.
	Servers []*serve.Server
	// Remote is the SUT client (also reachable as Assembly.SUT).
	Remote *backend.Remote
}

// Close disconnects the client and shuts every replica down.
func (d *LoopbackDeployment) Close() error {
	cerr := d.Remote.Close()
	var serr error
	for _, srv := range d.Servers {
		if err := srv.Close(); err != nil && serr == nil {
			serr = err
		}
	}
	if cerr != nil {
		return cerr
	}
	return serr
}

// ReplicaMetrics returns each replica's merged metrics snapshot, read
// directly from the in-process servers (in Servers order).
func (d *LoopbackDeployment) ReplicaMetrics() []serve.Snapshot {
	snaps := make([]serve.Snapshot, len(d.Servers))
	for i, srv := range d.Servers {
		snaps[i] = srv.Metrics()
	}
	return snaps
}

// ServeLoopback deploys the assembly's engine behind a fleet of loopback
// serve.Servers and returns a derived assembly whose SUT is a backend.Remote
// fanning out over all of them, so any scenario the source assembly can run
// in-process can also run over the wire — same data, same settings,
// bit-identical outputs — for side-by-side comparison. The caller must Close
// the deployment when done.
func (a *Assembly) ServeLoopback(opts ServeOptions) (*LoopbackDeployment, error) {
	if a.Engine == nil {
		return nil, fmt.Errorf("harness: assembly has no engine to serve")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	scfg := opts.Server
	if scfg.Engine == nil && len(scfg.Models) == 0 {
		scfg.Engine = a.Engine
	}
	if scfg.Store == nil {
		scfg.Store = a.QSL
	}
	if scfg.Addr != "" && opts.Replicas > 1 {
		return nil, fmt.Errorf("harness: a fixed server address cannot host %d replicas", opts.Replicas)
	}

	var (
		servers []*serve.Server
		addrs   []string
	)
	closeAll := func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
	for i := 0; i < opts.Replicas; i++ {
		srv, err := serve.New(scfg)
		if err != nil {
			closeAll()
			return nil, err
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}

	rcfg := opts.Client
	rcfg.Addr = ""
	rcfg.Addrs = addrs
	if rcfg.Name == "" {
		rcfg.Name = fmt.Sprintf("%s@%dx(%s)", a.SUT.Name(), len(addrs), addrs[0])
	}
	remote, err := backend.NewRemote(rcfg)
	if err != nil {
		closeAll()
		return nil, err
	}
	derived := *a
	derived.SUT = remote
	derived.observed = remote
	return &LoopbackDeployment{
		Assembly: &derived,
		Server:   servers[0],
		Servers:  servers,
		Remote:   remote,
	}, nil
}
