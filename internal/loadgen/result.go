package loadgen

import (
	"fmt"
	"time"

	"mlperf/internal/stats"
)

// AccuracyEntry is one logged response, consumed by the accuracy script after
// the run (Figure 3, step 7).
type AccuracyEntry struct {
	QueryID     uint64
	SampleIndex int
	Data        []byte
}

// Result summarises one LoadGen run.
type Result struct {
	Scenario Scenario
	Mode     Mode
	SUTName  string
	QSLName  string

	// Counters.
	QueriesIssued    int
	QueriesCompleted int
	SamplesIssued    int
	SamplesCompleted int
	ResponsesDropped int // samples answered without inference (rejected/expired)
	SkippedIntervals int // multistream: queries that caused >= 1 skipped interval

	// TestDuration is the wall-clock span of the timed portion.
	TestDuration time.Duration

	// QueryLatencies summarises per-query latency.
	QueryLatencies stats.LatencySummary

	// Scenario metrics (only the field for the run's scenario is meaningful).
	SingleStreamLatency    time.Duration // target-percentile latency
	MultiStreamStreams     int           // N streams sustained (0 if constraint violated)
	ServerAchievedQPS      float64       // completed queries per second
	ServerScheduledQPS     float64       // the Poisson parameter under test
	OfflineSamplesPerSec   float64       // offline throughput
	LatencyBoundViolations float64       // fraction of queries over the latency bound

	// Validity.
	Valid              bool
	ValidityMessages   []string
	AccuracyLog        []AccuracyEntry
	PerformanceSamples int // number of distinct loaded samples during the run
}

// MetricValue returns the scenario's headline metric as a float for
// table/figure generation: milliseconds for single-stream, streams for
// multistream, QPS for server, samples/s for offline.
func (r *Result) MetricValue() float64 {
	switch r.Scenario {
	case SingleStream:
		return float64(r.SingleStreamLatency) / float64(time.Millisecond)
	case MultiStream:
		return float64(r.MultiStreamStreams)
	case Server:
		return r.ServerAchievedQPS
	case Offline:
		return r.OfflineSamplesPerSec
	default:
		return 0
	}
}

// MetricName returns the human-readable headline metric name per Table II.
func (r *Result) MetricName() string {
	switch r.Scenario {
	case SingleStream:
		return fmt.Sprintf("%gth-percentile latency (ms)", 100*0.90)
	case MultiStream:
		return "streams subject to latency bound"
	case Server:
		return "queries per second subject to latency bound"
	case Offline:
		return "samples per second"
	default:
		return "unknown"
	}
}

// finalizeValidity applies the benchmark's minimum-query, minimum-duration
// and latency-bound requirements and records human-readable reasons for any
// violation.
func (r *Result) finalizeValidity(ts TestSettings) {
	r.Valid = true
	fail := func(format string, args ...interface{}) {
		r.Valid = false
		r.ValidityMessages = append(r.ValidityMessages, fmt.Sprintf(format, args...))
	}
	if r.QueriesCompleted < r.QueriesIssued {
		fail("only %d of %d issued queries completed", r.QueriesCompleted, r.QueriesIssued)
	}
	if r.ResponsesDropped > 0 {
		fail("SUT dropped %d responses (rejected, expired, or failed without a prediction)", r.ResponsesDropped)
	}
	if ts.Mode == PerformanceMode {
		if r.QueriesIssued < ts.MinQueryCount {
			fail("issued %d queries, benchmark requires at least %d", r.QueriesIssued, ts.MinQueryCount)
		}
		if r.TestDuration < ts.MinDuration {
			fail("test ran for %v, benchmark requires at least %v", r.TestDuration, ts.MinDuration)
		}
	}
	switch ts.Scenario {
	case Server:
		allowed := 1 - ts.ServerLatencyPercentile
		if r.LatencyBoundViolations > allowed+1e-12 {
			fail("%.3f%% of queries exceeded the %v latency bound (allowed %.3f%%)",
				100*r.LatencyBoundViolations, ts.ServerTargetLatency, 100*allowed)
		}
	case MultiStream:
		if r.QueriesIssued > 0 {
			skipFraction := float64(r.SkippedIntervals) / float64(r.QueriesIssued)
			if skipFraction > ts.MultiStreamMaxSkipFraction+1e-12 {
				fail("%.3f%% of queries produced skipped intervals (allowed %.3f%%)",
					100*skipFraction, 100*ts.MultiStreamMaxSkipFraction)
			}
		}
	case Offline:
		if ts.Mode == PerformanceMode && r.SamplesIssued < ts.MinSampleCount {
			fail("offline query contained %d samples, benchmark requires at least %d", r.SamplesIssued, ts.MinSampleCount)
		}
	}
}
