package serve

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"mlperf/internal/trace"
)

// TestTracedPredictRequestRoundTrip: the V3 request frame carries the trace
// id and model through encode/decode, and an untraced request's encoding is
// byte-identical to the V1/V2 frames (tracing must not perturb the
// established wire format).
func TestTracedPredictRequestRoundTrip(t *testing.T) {
	deadline := time.Unix(0, 123456789)
	for _, model := range []string{"", "resnet"} {
		var buf bytes.Buffer
		req := PredictRequest{ID: 42, SampleIndex: 7, Deadline: deadline, Model: model, TraceID: 99}
		if err := WritePredictRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
		msgType, body, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if msgType != MsgPredictTraced {
			t.Fatalf("model %q: traced request encoded as frame type %d", model, msgType)
		}
		got, err := decodePredictTracedRequest(body)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != 42 || got.SampleIndex != 7 || !got.Deadline.Equal(deadline) ||
			got.Model != model || got.TraceID != 99 {
			t.Fatalf("round trip mangled the request: %+v", got)
		}
	}

	// TraceID == 0 must stay on the old wire format, byte for byte.
	var v1, untraced bytes.Buffer
	if err := WritePredictRequest(&v1, PredictRequest{ID: 1, SampleIndex: 2}); err != nil {
		t.Fatal(err)
	}
	if err := WritePredictRequest(&untraced, PredictRequest{ID: 1, SampleIndex: 2, TraceID: 0}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1.Bytes(), untraced.Bytes()) {
		t.Fatalf("zero trace id changed the V1 encoding")
	}
}

// TestTracedPredictResponseRoundTrip covers both span-flag shapes and the
// client-side entry point (ReadClientFrame).
func TestTracedPredictResponseRoundTrip(t *testing.T) {
	spans := &trace.WireSpans{
		RecvUnixNano: 1_700_000_000_000_000_000,
		Admit:        10, Queue: 20, Assembly: 30, Service: 40, Encode: 50,
	}
	payload := []byte("encoded-output")

	var buf bytes.Buffer
	if err := writeFrame(&buf, MsgPredictTraced, encodePredictTracedResponse(7, StatusOK, spans, payload)); err != nil {
		t.Fatal(err)
	}
	frame, err := ReadClientFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if frame.Type != MsgPredictTraced {
		t.Fatalf("frame type %d", frame.Type)
	}
	resp := frame.Predict
	if resp.ID != 7 || resp.Status != StatusOK || string(resp.Data) != string(payload) {
		t.Fatalf("response mangled: %+v", resp)
	}
	if resp.Spans == nil || *resp.Spans != *spans {
		t.Fatalf("span block mangled: %+v", resp.Spans)
	}

	// Span-less traced response (e.g. a rejected request's answer).
	buf.Reset()
	if err := writeFrame(&buf, MsgPredictTraced, encodePredictTracedResponse(8, StatusRejected, nil, nil)); err != nil {
		t.Fatal(err)
	}
	frame, err = ReadClientFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if frame.Predict.Spans != nil || frame.Predict.Status != StatusRejected || frame.Predict.Data != nil {
		t.Fatalf("span-less response mangled: %+v", frame.Predict)
	}

	// Malformed: a zero trace id on the request side must not decode.
	if _, err := decodePredictTracedRequest(make([]byte, 30)); err == nil {
		t.Fatal("zero trace id decoded without error")
	}
}
