package model

import (
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"mlperf/internal/tensor"
)

// Micro-batch cache budget detection. The budget is the cache share one
// micro-batch's live activations may occupy (the numerator of the micro-batch
// derivation in engine.go). It used to be a fixed 384 KiB — implicitly tuned
// to a 512 KiB L2 — and now adapts to the machine:
//
//  1. MLPERF_MICROBATCH_CACHE_BYTES, when set to a positive integer, wins
//     outright (deployments and tests pin the budget with it).
//  2. On Linux, the per-core L2 size is probed from
//     /sys/devices/system/cpu/cpu0/cache (tensor.ProbeL2CacheBytes) and the
//     budget is 3/4 of it — the same share 384 KiB is of a 512 KiB L2,
//     leaving the rest of the cache for the weight panels streaming through
//     the batched GEMMs. The result is clamped to [128 KiB, 4 MiB]: below the
//     floor a derived micro-batch of 1 defeats batching, above the ceiling
//     the micro-batch cap dominates anyway and a huge shared-L2 reading would
//     not make residency real.
//  3. Anywhere else the previous 384 KiB default applies.
//
// The budget is re-readable at any time: engines no longer freeze their
// micro-batch at construction (BatchSizer.PreferredBatch derives it from the
// live budget per call), so SetMicroBatchCacheBudget takes effect on engines
// that already exist. The budget only sizes micro-batches; results are
// bit-identical under any grouping (see the Engine contract), so differing
// budgets across machines never change outputs, only throughput.
const (
	microBatchCacheBudgetEnv     = "MLPERF_MICROBATCH_CACHE_BYTES"
	defaultMicroBatchCacheBudget = 384 << 10
	minMicroBatchCacheBudget     = 128 << 10
	maxMicroBatchCacheBudget     = 4 << 20
)

// cacheBudgetBytes is the resolved budget; 0 means "not resolved yet" and the
// next read re-runs the detection chain.
var cacheBudgetBytes atomic.Int64

// microBatchCacheBudget returns the process-wide activation cache budget,
// resolving it on first use (env override, then sysfs probe, then default).
func microBatchCacheBudget() int {
	if v := cacheBudgetBytes.Load(); v > 0 {
		return int(v)
	}
	// CompareAndSwap so a concurrent SetMicroBatchCacheBudget wins over the
	// detection result.
	cacheBudgetBytes.CompareAndSwap(0, int64(detectCacheBudget("/sys/devices/system/cpu/cpu0/cache")))
	return int(cacheBudgetBytes.Load())
}

// SetMicroBatchCacheBudget overrides the activation cache budget and returns
// the previous value. A non-positive argument discards any override so the
// next read re-runs detection. Because PreferredBatch derives micro-batches
// from the live budget, the new value takes effect immediately, including on
// engines built before the call.
func SetMicroBatchCacheBudget(bytes int) int {
	prev := microBatchCacheBudget()
	if bytes <= 0 {
		cacheBudgetBytes.Store(0)
	} else {
		cacheBudgetBytes.Store(int64(bytes))
	}
	return prev
}

// detectCacheBudget resolves the budget from the environment, the given sysfs
// cache directory, or the built-in default, in that order.
func detectCacheBudget(sysfsCacheDir string) int {
	if v := os.Getenv(microBatchCacheBudgetEnv); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
			return n
		}
	}
	if l2 := tensor.ProbeL2CacheBytes(sysfsCacheDir); l2 > 0 {
		budget := l2 * 3 / 4
		if budget < minMicroBatchCacheBudget {
			budget = minMicroBatchCacheBudget
		}
		if budget > maxMicroBatchCacheBudget {
			budget = maxMicroBatchCacheBudget
		}
		return budget
	}
	return defaultMicroBatchCacheBudget
}

// setMicroBatchCacheBudgetForTest pins the budget for tests that assert
// machine-independent micro-batch derivations, returning a restore func.
func setMicroBatchCacheBudgetForTest(bytes int) (restore func()) {
	prev := SetMicroBatchCacheBudget(bytes)
	return func() { SetMicroBatchCacheBudget(prev) }
}
