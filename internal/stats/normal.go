// Package stats provides the statistical machinery used by the MLPerf
// Inference benchmark method: the inverse normal CDF and query-count
// requirements of Section III-D (Equations 1 and 2, Table IV), Poisson and
// exponential arrival-process generation for the server scenario, and
// percentile estimators for tail-latency reporting.
package stats

import (
	"errors"
	"math"
)

// ErrInvalidProbability is returned when a probability argument lies outside
// the open interval (0, 1).
var ErrInvalidProbability = errors.New("stats: probability must be in (0, 1)")

// NormSInv returns the inverse of the standard normal cumulative distribution
// function evaluated at p (the "probit" function). It is the NormsInv term of
// Equation 2 in the paper.
//
// The implementation uses Peter Acklam's rational approximation refined by a
// single step of Halley's method, giving a relative error below 1e-9 across
// the full domain, which is far tighter than needed for query-count planning.
func NormSInv(p float64) (float64, error) {
	if !(p > 0 && p < 1) || math.IsNaN(p) {
		return 0, ErrInvalidProbability
	}

	// Coefficients in rational approximations.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}

	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One step of Halley's method against the true CDF sharpens the estimate.
	e := normCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// normCDF returns the standard normal cumulative distribution function at x.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormCDF exposes the standard normal CDF; it is the inverse of NormSInv and
// is used by property tests and by the audit tooling when checking reported
// confidence levels.
func NormCDF(x float64) float64 { return normCDF(x) }
