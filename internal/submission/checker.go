package submission

import (
	"fmt"

	"mlperf/internal/core"
	"mlperf/internal/loadgen"
)

// CheckOptions tunes the submission checker.
type CheckOptions struct {
	// ScaleFactor relaxes the production query-count and duration minimums by
	// the given factor. Factor 1 (or 0) checks against the full Table V
	// requirements; tests and demos use larger factors because their runs are
	// scaled down the same way.
	ScaleFactor int
}

func (o *CheckOptions) normalize() {
	if o.ScaleFactor <= 0 {
		o.ScaleFactor = 1
	}
}

// Issue is one problem the checker found with an entry.
type Issue struct {
	EntryIndex int
	Rule       string
	Detail     string
}

// String formats the issue for review logs.
func (i Issue) String() string {
	return fmt.Sprintf("entry %d [%s]: %s", i.EntryIndex, i.Rule, i.Detail)
}

// CheckEntry validates a single entry against the submission rules and
// returns every issue found (an empty slice means the entry is clean).
func CheckEntry(index int, e Entry, opts CheckOptions) []Issue {
	opts.normalize()
	var issues []Issue
	add := func(rule, format string, args ...interface{}) {
		issues = append(issues, Issue{EntryIndex: index, Rule: rule, Detail: fmt.Sprintf(format, args...)})
	}

	if err := e.System.Validate(); err != nil {
		add("system-description", "%v", err)
	}
	if !ValidDivision(e.Division) {
		add("division", "unknown division %q", e.Division)
	}
	if !ValidCategory(e.Category) {
		add("category", "unknown category %q", e.Category)
	}

	spec, err := core.Spec(e.Task)
	if err != nil {
		add("task", "%v", err)
		return issues
	}

	if e.Division == Closed && e.ModelUsed != string(spec.ReferenceModel) {
		add("model-equivalence", "closed division requires the reference model %q, got %q", spec.ReferenceModel, e.ModelUsed)
	}
	if e.Division == Open && e.OpenDeviations == "" {
		add("open-documentation", "open-division entries must document how they deviate from the closed rules")
	}

	if e.Performance == nil {
		add("performance", "missing performance result")
	} else {
		perf := e.Performance
		if perf.Scenario != e.Scenario {
			add("performance", "result scenario %v does not match entry scenario %v", perf.Scenario, e.Scenario)
		}
		if !perf.Valid {
			add("performance-validity", "LoadGen declared the run invalid: %v", perf.ValidityMessages)
		}
		minQueries := requiredQueries(spec, e.Scenario) / opts.ScaleFactor
		if minQueries < 1 {
			minQueries = 1
		}
		if e.Scenario != loadgen.Offline && perf.QueriesIssued < minQueries {
			add("query-count", "issued %d queries, Table V requires at least %d (scale factor %d)",
				perf.QueriesIssued, minQueries, opts.ScaleFactor)
		}
		if e.Scenario == loadgen.Offline {
			minSamples := spec.OfflineSamples / opts.ScaleFactor
			if minSamples < 1 {
				minSamples = 1
			}
			if perf.SamplesIssued < minSamples {
				add("sample-count", "offline query held %d samples, Table V requires at least %d (scale factor %d)",
					perf.SamplesIssued, minSamples, opts.ScaleFactor)
			}
		}
	}

	if e.Division == Closed {
		if e.Accuracy == nil {
			add("accuracy", "closed-division entries must include an accuracy run")
		} else if !e.Accuracy.Pass {
			add("quality-target", "measured %s %.4f below target %.4f", e.Accuracy.Metric, e.Accuracy.Value, e.Accuracy.Target)
		}
	}
	return issues
}

// requiredQueries returns the Table V minimum query count for the scenario.
func requiredQueries(spec core.TaskSpec, s loadgen.Scenario) int {
	switch s {
	case loadgen.SingleStream:
		return spec.SingleStreamQueries
	case loadgen.MultiStream:
		return spec.MultiStreamQueries
	case loadgen.Server:
		return spec.ServerQueries
	case loadgen.Offline:
		return 1
	default:
		return 1
	}
}

// Check validates every entry of a submission. It returns the issues and the
// number of entries that are clean (the "cleared as valid" count of
// Section VI).
func Check(s Submission, opts CheckOptions) (issues []Issue, cleared int) {
	for i, e := range s.Entries {
		entryIssues := CheckEntry(i, e, opts)
		if len(entryIssues) == 0 {
			cleared++
		}
		issues = append(issues, entryIssues...)
	}
	return issues, cleared
}
