// Package harness wires the benchmark's components together (Figure 3): it
// builds a task's reference model, synthetic data set and query sample
// library, constructs a system under test, runs the LoadGen in performance
// and accuracy modes, and scores quality with the accuracy script. It also
// provides the virtual-time "simulated submission" path used to regenerate
// the paper's evaluation figures across the platform catalogue.
package harness

import (
	"fmt"
	"runtime"

	"mlperf/internal/accuracy"
	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/metrics"
	"mlperf/internal/model"
	"mlperf/internal/quantize"
	"mlperf/internal/stats"
)

// BuildOptions configures BuildNative.
type BuildOptions struct {
	// DatasetSamples is the synthetic data-set size (default 256).
	DatasetSamples int
	// Classes is the label/object-class count for vision tasks (default 10).
	Classes int
	// ImageSize is the square input resolution for vision tasks (default 16).
	ImageSize int
	// Vocab is the vocabulary size for translation (default 64).
	Vocab int
	// Seed drives model initialization, data generation and calibration.
	Seed uint64
	// Workers is the native backend's inference concurrency (defaults to
	// runtime.GOMAXPROCS, i.e. all cores).
	Workers int
	// Quantization, when non-empty, converts the model weights to the given
	// format after the FP32 reference quality is established, using the
	// calibration subset (closed-division quantization flow).
	Quantization quantize.Format
	// CalibrationSamples is the size of the calibration subset (default 32).
	CalibrationSamples int
}

func (o *BuildOptions) normalize() {
	if o.DatasetSamples <= 0 {
		o.DatasetSamples = 256
	}
	if o.Classes <= 1 {
		o.Classes = 10
	}
	if o.ImageSize < 8 {
		o.ImageSize = 16
	}
	if o.Vocab < 8 {
		o.Vocab = 64
	}
	if o.Workers <= 0 {
		// All cores, floored at 2 so the issue loop still overlaps with an
		// in-flight inference on single-core hosts (matches backend.Native).
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.CalibrationSamples <= 0 {
		o.CalibrationSamples = 32
	}
}

// Assembly is a fully wired, runnable benchmark task.
type Assembly struct {
	Spec    core.TaskSpec
	Info    model.Info
	Dataset dataset.Dataset
	QSL     *dataset.QSL
	SUT     loadgen.SUT
	// Engine is the inference engine behind the SUT, exposed so alternative
	// SUT frontends (the loopback serving path, benchmarks) can reuse it.
	Engine model.Engine

	// ReferenceQuality is the FP32 reference model's measured quality on the
	// synthetic data set; the quality target is Spec.TargetRatio times it.
	ReferenceQuality float64
	// QualityTarget is the minimum quality an equivalent implementation must
	// reach.
	QualityTarget float64
	// QuantizationStats records the weight conversion if quantization was
	// requested.
	QuantizationStats []quantize.TensorStats

	// observed is the SUT's post-run inspection view: Run drains it and
	// fails on accumulated inference errors. backend.Native and
	// backend.Remote both satisfy it.
	observed sutObserver
}

// sutObserver is the post-run view a backend exposes to the harness.
type sutObserver interface {
	Wait()
	Errors() []error
}

// NativeBackend returns the underlying native backend for error inspection,
// or nil when the assembly's SUT is not a backend.Native.
func (a *Assembly) NativeBackend() *backend.Native {
	n, _ := a.observed.(*backend.Native)
	return n
}

// SetSUT swaps the system under test, updating the harness's post-run
// inspection view when the new SUT exposes one (backend.Native, Simulated
// and Remote all do).
func (a *Assembly) SetSUT(sut loadgen.SUT) {
	a.SUT = sut
	if obs, ok := sut.(sutObserver); ok {
		a.observed = obs
	} else {
		a.observed = nil
	}
}

// BuildNative assembles a task around the in-repo reference models and
// synthetic data. The data set's ground truth is calibrated against the FP32
// reference model so that the model's measured quality lands near the paper's
// published reference quality, which makes the per-task quality targets
// meaningful (Section III-B).
func BuildNative(task core.Task, opts BuildOptions) (*Assembly, error) {
	opts.normalize()
	spec, err := core.Spec(task)
	if err != nil {
		return nil, err
	}

	a := &Assembly{Spec: spec}
	switch spec.ReferenceModel {
	case model.ResNet50, model.MobileNetV1:
		err = a.buildClassification(spec, opts)
	case model.SSDResNet34, model.SSDMobileNet:
		err = a.buildDetection(spec, opts)
	case model.GNMT:
		err = a.buildTranslation(spec, opts)
	default:
		err = fmt.Errorf("harness: task %s uses unsupported model %s", task, spec.ReferenceModel)
	}
	if err != nil {
		return nil, err
	}
	a.QualityTarget = spec.QualityTarget(a.ReferenceQuality)
	return a, nil
}

// buildClassification assembles the two image-classification tasks.
func (a *Assembly) buildClassification(spec core.TaskSpec, opts BuildOptions) error {
	cfg := model.ClassifierConfig{Classes: opts.Classes, ImageSize: opts.ImageSize, Seed: opts.Seed}
	var (
		classifier *model.ImageClassifier
		err        error
	)
	if spec.ReferenceModel == model.ResNet50 {
		classifier, err = model.NewResNet50Mini(cfg)
	} else {
		classifier, err = model.NewMobileNetV1Mini(cfg)
	}
	if err != nil {
		return err
	}
	a.Info = classifier.Info()
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Name: spec.DatasetName, Samples: opts.DatasetSamples, Classes: opts.Classes,
		Channels: 3, Height: opts.ImageSize, Width: opts.ImageSize, Seed: opts.Seed + 1,
	})
	if err != nil {
		return err
	}

	// Establish the FP32 reference quality by oracle relabeling.
	info, err := model.Describe(spec.ReferenceModel)
	if err != nil {
		return err
	}
	reference, err := calibrateClassification(classifier, ds, info.PaperReferenceQuality, opts.Seed+2, opts.Classes)
	if err != nil {
		return err
	}
	a.ReferenceQuality = reference

	if err := a.maybeQuantize(classifier, ds, opts); err != nil {
		return err
	}

	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		return err
	}
	sut, err := backend.NewNative(backend.NativeConfig{
		Name: string(spec.ReferenceModel), Engine: classifier, Store: qsl, Workers: opts.Workers,
	})
	if err != nil {
		return err
	}
	a.Dataset, a.QSL, a.SUT, a.Engine, a.observed = ds, qsl, sut, classifier, sut
	return nil
}

// buildDetection assembles the two object-detection tasks.
func (a *Assembly) buildDetection(spec core.TaskSpec, opts BuildOptions) error {
	cfg := model.DetectorConfig{Classes: opts.Classes, ImageSize: opts.ImageSize, Seed: opts.Seed, ScoreThreshold: 0.2}
	var (
		detector *model.SSDDetector
		err      error
	)
	if spec.ReferenceModel == model.SSDResNet34 {
		detector, err = model.NewSSDResNet34Mini(cfg)
	} else {
		detector, err = model.NewSSDMobileNetMini(cfg)
	}
	if err != nil {
		return err
	}
	a.Info = detector.Info()
	ds, err := dataset.NewSyntheticDetection(dataset.ImageConfig{
		Name: spec.DatasetName, Samples: opts.DatasetSamples, Classes: opts.Classes,
		Channels: 3, Height: opts.ImageSize, Width: opts.ImageSize, Seed: opts.Seed + 1,
	})
	if err != nil {
		return err
	}
	info, err := model.Describe(spec.ReferenceModel)
	if err != nil {
		return err
	}
	reference, err := calibrateDetection(detector, ds, info.PaperReferenceQuality, opts.Seed+2)
	if err != nil {
		return err
	}
	a.ReferenceQuality = reference

	if err := a.maybeQuantize(detector, ds, opts); err != nil {
		return err
	}

	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		return err
	}
	sut, err := backend.NewNative(backend.NativeConfig{
		Name: string(spec.ReferenceModel), Engine: detector, Store: qsl, Workers: opts.Workers,
	})
	if err != nil {
		return err
	}
	a.Dataset, a.QSL, a.SUT, a.Engine, a.observed = ds, qsl, sut, detector, sut
	return nil
}

// buildTranslation assembles the machine-translation task.
func (a *Assembly) buildTranslation(spec core.TaskSpec, opts BuildOptions) error {
	translator, err := model.NewGNMTMini(model.TranslatorConfig{Vocab: opts.Vocab, Seed: opts.Seed})
	if err != nil {
		return err
	}
	a.Info = translator.Info()
	ds, err := dataset.NewSyntheticText(dataset.TextConfig{
		Name: spec.DatasetName, Samples: opts.DatasetSamples, Vocab: opts.Vocab, Seed: opts.Seed + 1,
	})
	if err != nil {
		return err
	}
	info, err := model.Describe(spec.ReferenceModel)
	if err != nil {
		return err
	}
	reference, err := calibrateTranslation(translator, ds, info.PaperReferenceQuality/100, opts.Seed+2)
	if err != nil {
		return err
	}
	a.ReferenceQuality = reference

	if err := a.maybeQuantize(translator, ds, opts); err != nil {
		return err
	}

	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		return err
	}
	sut, err := backend.NewNative(backend.NativeConfig{
		Name: string(spec.ReferenceModel), Engine: translator, Store: qsl, Workers: opts.Workers,
	})
	if err != nil {
		return err
	}
	a.Dataset, a.QSL, a.SUT, a.Engine, a.observed = ds, qsl, sut, translator, sut
	return nil
}

// maybeQuantize converts the model weights after the FP32 reference quality
// has been measured, mirroring the closed division's calibration-based
// post-training quantization.
func (a *Assembly) maybeQuantize(m model.WeightedModel, ds dataset.Dataset, opts BuildOptions) error {
	if opts.Quantization == "" || opts.Quantization == quantize.FP32 {
		return nil
	}
	if !quantize.Valid(opts.Quantization) {
		return fmt.Errorf("harness: format %q is not on the approved numerics list", opts.Quantization)
	}
	if _, err := dataset.CalibrationSet(ds, opts.CalibrationSamples); err != nil {
		return err
	}
	statsList, err := quantize.Model(m.Weights(), opts.Quantization)
	if err != nil {
		return err
	}
	a.QuantizationStats = statsList
	return nil
}

// calibrateClassification relabels the data set so that the classifier's
// predictions match ground truth for approximately the agreement fraction,
// then returns the measured Top-1 accuracy.
func calibrateClassification(m model.Classifier, ds *dataset.SyntheticImages, agreement float64, seed uint64, classes int) (float64, error) {
	rng := stats.NewRNG(seed)
	var preds, labels []int
	for i := 0; i < ds.Size(); i++ {
		sample, err := ds.Sample(i)
		if err != nil {
			return 0, err
		}
		pred, err := m.Classify(sample.Image)
		if err != nil {
			return 0, fmt.Errorf("harness: calibrating sample %d: %w", i, err)
		}
		label := pred
		if rng.Float64() >= agreement {
			// Assign a deliberately different label so the model misses it.
			label = (pred + 1 + rng.Intn(classes-1)) % classes
		}
		if err := ds.SetLabel(i, label); err != nil {
			return 0, err
		}
		preds = append(preds, pred)
		labels = append(labels, label)
	}
	return metrics.Top1Accuracy(preds, labels)
}

// calibrateDetection sets the ground-truth boxes to the detector's own output
// for approximately the agreement fraction of samples and returns the
// measured mAP.
func calibrateDetection(m model.Detector, ds *dataset.SyntheticDetection, agreement float64, seed uint64) (float64, error) {
	rng := stats.NewRNG(seed)
	var dets []metrics.Detection
	var truths []metrics.GroundTruth
	for i := 0; i < ds.Size(); i++ {
		sample, err := ds.Sample(i)
		if err != nil {
			return 0, err
		}
		boxes, err := m.Detect(sample.Image)
		if err != nil {
			return 0, fmt.Errorf("harness: calibrating sample %d: %w", i, err)
		}
		if rng.Float64() < agreement && len(boxes) > 0 {
			truth := make([]metrics.Box, len(boxes))
			copy(truth, boxes)
			if err := ds.SetBoxes(i, truth); err != nil {
				return 0, err
			}
		}
		fresh, err := ds.Sample(i)
		if err != nil {
			return 0, err
		}
		dets = append(dets, metrics.Detection{SampleIndex: i, Boxes: boxes})
		truths = append(truths, metrics.GroundTruth{SampleIndex: i, Boxes: fresh.Boxes})
	}
	return metrics.MeanAveragePrecision(dets, truths, 0.5)
}

// calibrateTranslation sets the reference translation to the translator's own
// output for approximately the agreement fraction of sentences and returns
// the measured corpus BLEU.
func calibrateTranslation(m model.Translator, ds *dataset.SyntheticText, agreement float64, seed uint64) (float64, error) {
	rng := stats.NewRNG(seed)
	var hyps, refs [][]int
	for i := 0; i < ds.Size(); i++ {
		sample, err := ds.Sample(i)
		if err != nil {
			return 0, err
		}
		hyp, err := m.Translate(sample.Tokens)
		if err != nil {
			return 0, fmt.Errorf("harness: calibrating sentence %d: %w", i, err)
		}
		if rng.Float64() < agreement && len(hyp) > 0 {
			ref := make([]int, len(hyp))
			copy(ref, hyp)
			if err := ds.SetReference(i, ref); err != nil {
				return 0, err
			}
		}
		fresh, err := ds.Sample(i)
		if err != nil {
			return 0, err
		}
		hyps = append(hyps, hyp)
		refs = append(refs, fresh.RefTokens)
	}
	return metrics.CorpusBLEU(hyps, refs)
}

// ScoreAccuracyLog runs the accuracy script over an accuracy-mode result for
// this assembly.
func (a *Assembly) ScoreAccuracyLog(log []loadgen.AccuracyEntry) (accuracy.Report, error) {
	return accuracy.Check(log, a.Dataset, a.ReferenceQuality, a.QualityTarget)
}
