// Package metrics implements the model-quality metrics the benchmark's
// accuracy mode checks against the per-task quality targets of Table I:
// Top-1 accuracy for image classification, mean average precision (mAP) for
// object detection, and corpus BLEU for machine translation.
package metrics

import "fmt"

// Top1Accuracy returns the fraction of predictions that exactly match the
// ground-truth labels.
func Top1Accuracy(predictions, labels []int) (float64, error) {
	if len(predictions) != len(labels) {
		return 0, fmt.Errorf("metrics: %d predictions vs %d labels", len(predictions), len(labels))
	}
	if len(predictions) == 0 {
		return 0, fmt.Errorf("metrics: no predictions to score")
	}
	correct := 0
	for i := range predictions {
		if predictions[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(predictions)), nil
}

// TopKAccuracy returns the fraction of samples whose ground-truth label is
// contained in the sample's top-k candidate list.
func TopKAccuracy(candidates [][]int, labels []int) (float64, error) {
	if len(candidates) != len(labels) {
		return 0, fmt.Errorf("metrics: %d candidate lists vs %d labels", len(candidates), len(labels))
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("metrics: no predictions to score")
	}
	hit := 0
	for i, cands := range candidates {
		for _, c := range cands {
			if c == labels[i] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(candidates)), nil
}
