package model

import (
	"os"
	"path/filepath"
	"testing"
)

// writeSysfsCache fabricates a /sys/devices/system/cpu/cpu0/cache layout.
func writeSysfsCache(t *testing.T, indexes []map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for i, attrs := range indexes {
		idx := filepath.Join(dir, "index"+string(rune('0'+i)))
		if err := os.Mkdir(idx, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, value := range attrs {
			if err := os.WriteFile(filepath.Join(idx, name), []byte(value+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return dir
}

func TestProbeL2Bytes(t *testing.T) {
	dir := writeSysfsCache(t, []map[string]string{
		{"level": "1", "type": "Data", "size": "48K"},
		{"level": "1", "type": "Instruction", "size": "32K"},
		{"level": "2", "type": "Unified", "size": "2048K"},
		{"level": "3", "type": "Unified", "size": "32M"},
	})
	if got := probeL2Bytes(dir); got != 2048<<10 {
		t.Errorf("probeL2Bytes = %d, want %d", got, 2048<<10)
	}
	if got := probeL2Bytes(filepath.Join(dir, "missing")); got != 0 {
		t.Errorf("missing topology: probeL2Bytes = %d, want 0", got)
	}
	malformed := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "lots"},
	})
	if got := probeL2Bytes(malformed); got != 0 {
		t.Errorf("malformed size: probeL2Bytes = %d, want 0", got)
	}
}

func TestDetectCacheBudget(t *testing.T) {
	// Env override beats the probe.
	t.Setenv(microBatchCacheBudgetEnv, "262144")
	dir := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "2048K"},
	})
	if got := detectCacheBudget(dir); got != 262144 {
		t.Errorf("env override: budget = %d, want 262144", got)
	}

	// Probe: 3/4 of L2.
	t.Setenv(microBatchCacheBudgetEnv, "")
	if got, want := detectCacheBudget(dir), (2048<<10)*3/4; got != want {
		t.Errorf("probed budget = %d, want %d", got, want)
	}
	// A 512 KiB L2 reproduces the historical 384 KiB default exactly.
	half := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "512K"},
	})
	if got := detectCacheBudget(half); got != defaultMicroBatchCacheBudget {
		t.Errorf("512K L2 budget = %d, want the historical %d", got, defaultMicroBatchCacheBudget)
	}

	// Clamps.
	tiny := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "64K"},
	})
	if got := detectCacheBudget(tiny); got != minMicroBatchCacheBudget {
		t.Errorf("tiny L2 budget = %d, want floor %d", got, minMicroBatchCacheBudget)
	}
	huge := writeSysfsCache(t, []map[string]string{
		{"level": "2", "type": "Unified", "size": "1G"},
	})
	if got := detectCacheBudget(huge); got != maxMicroBatchCacheBudget {
		t.Errorf("huge L2 budget = %d, want ceiling %d", got, maxMicroBatchCacheBudget)
	}

	// No probe, no env: historical default.
	if got := detectCacheBudget(t.TempDir()); got != defaultMicroBatchCacheBudget {
		t.Errorf("fallback budget = %d, want %d", got, defaultMicroBatchCacheBudget)
	}

	// Garbage env falls through to the probe.
	t.Setenv(microBatchCacheBudgetEnv, "not-a-number")
	if got, want := detectCacheBudget(dir), (2048<<10)*3/4; got != want {
		t.Errorf("garbage env: budget = %d, want probed %d", got, want)
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int{
		"48K": 48 << 10, "2048K": 2048 << 10, "1M": 1 << 20, "1G": 1 << 30,
		"123": 123, "": 0, "K": 0, "-4K": 0, "4.5M": 0,
	}
	for in, want := range cases {
		if got := parseCacheSize(in); got != want {
			t.Errorf("parseCacheSize(%q) = %d, want %d", in, got, want)
		}
	}
}

// TestMicroBatchBudgetAffectsDerivation closes the loop: a larger pinned
// budget must deepen a derived micro-batch.
func TestMicroBatchBudgetAffectsDerivation(t *testing.T) {
	restore := setMicroBatchCacheBudgetForTest(defaultMicroBatchCacheBudget)
	narrow, err := NewResNet50Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	restore()

	defer setMicroBatchCacheBudgetForTest(4 * defaultMicroBatchCacheBudget)()
	deep, err := NewResNet50Mini(ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if deep.PreferredBatch() <= narrow.PreferredBatch() {
		t.Errorf("4x budget micro-batch = %d, want deeper than %d",
			deep.PreferredBatch(), narrow.PreferredBatch())
	}
}
