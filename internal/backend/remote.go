package backend

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// RemoteConfig configures a Remote SUT client.
type RemoteConfig struct {
	// Addr is the serve.Server address (host:port); required.
	Addr string
	// Name labels the SUT in results; defaults to "remote(<addr>)".
	Name string
	// Conns is how many TCP connections the client multiplexes requests
	// over (default 2). Responses return on the connection that carried the
	// request; more connections reduce head-of-line blocking in the kernel
	// socket buffers under high offered load.
	Conns int
	// MaxInFlight bounds the client's outstanding (unanswered) requests
	// (default 256). This is the client half of the flow-control pair — the
	// server's admission queue is the other — and is what lets a merged
	// offline query of tens of thousands of samples stream through a
	// bounded server queue without mass rejects. Issuing blocks when the
	// window is full, which the LoadGen observes as scheduling backpressure
	// (an overloaded SUT falling behind, exactly what the Server scenario
	// is designed to penalize).
	MaxInFlight int
	// Deadline, when positive, stamps every request with an absolute
	// deadline this far in the future; the server answers StatusExpired
	// instead of serving requests whose deadline passed while queued.
	Deadline time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
}

func (c *RemoteConfig) normalize() error {
	if c.Addr == "" {
		return fmt.Errorf("backend: remote SUT needs an address")
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("remote(%s)", c.Addr)
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return nil
}

// Remote drives a serve.Server as the system under test: a loadgen.SUT whose
// inference happens across a real network boundary. Each query sample becomes
// one predict request (the server's dynamic batcher re-coalesces them), so
// every scenario — SingleStream, MultiStream, Server, Offline — runs over the
// wire with zero changes to the LoadGen.
//
// Shed load is never silent: requests the server rejects or expires complete
// their query with loadgen.Response.Dropped set, which the LoadGen counts and
// uses to invalidate the run. Transport and server-side inference errors are
// recorded and surfaced via Errors, mirroring Native.
type Remote struct {
	cfg    RemoteConfig
	conns  []*remoteConn
	next   atomic.Uint64 // round-robin connection cursor
	nextID atomic.Uint64 // wire request ids

	window   chan struct{}  // in-flight request slots (client flow control)
	feeders  sync.WaitGroup // multi-sample issue goroutines
	inflight sync.WaitGroup // outstanding requests

	rejected atomic.Int64
	expired  atomic.Int64

	closing atomic.Bool
	errs    errorLog
}

// pendingRequest ties a wire id back to the query sample awaiting it.
type pendingRequest struct {
	query    *loadgen.Query
	sampleID uint64
}

// remoteConn is one client connection: a serialized writer plus a reader
// goroutine that demultiplexes responses back to their queries.
type remoteConn struct {
	r *Remote
	c net.Conn

	wmu sync.Mutex
	w   *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]pendingRequest
	metrics map[uint64]chan []byte
	// dead is set by fail(): the reader is gone, so nothing will ever
	// resolve a request registered from here on — issuers settle locally
	// instead of registering.
	dead bool
}

// write serializes one frame onto the connection: fn writes it, then the
// buffered writer is flushed, all under the write lock.
func (rc *remoteConn) write(fn func(w io.Writer) error) error {
	rc.wmu.Lock()
	defer rc.wmu.Unlock()
	if err := fn(rc.w); err != nil {
		return err
	}
	return rc.w.Flush()
}

// NewRemote dials the server and returns the connected SUT client.
func NewRemote(cfg RemoteConfig) (*Remote, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &Remote{cfg: cfg, window: make(chan struct{}, cfg.MaxInFlight)}
	for i := 0; i < cfg.Conns; i++ {
		c, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("backend: dialing %s: %w", cfg.Addr, err)
		}
		rc := &remoteConn{
			r: r, c: c, w: bufio.NewWriter(c),
			pending: make(map[uint64]pendingRequest),
			metrics: make(map[uint64]chan []byte),
		}
		r.conns = append(r.conns, rc)
		go rc.readLoop()
	}
	return r, nil
}

// Name implements loadgen.SUT.
func (r *Remote) Name() string { return r.cfg.Name }

// IssueQuery implements loadgen.SUT. Single-sample queries issue inline
// (blocking briefly on the in-flight window when it is full — backpressure
// the LoadGen should see); multi-sample queries stream from a feeder
// goroutine so the call returns quickly.
func (r *Remote) IssueQuery(q *loadgen.Query) {
	if len(q.Samples) <= 1 {
		for i := range q.Samples {
			r.issueSample(q, q.Samples[i])
		}
		return
	}
	r.feeders.Add(1)
	go func() {
		defer r.feeders.Done()
		for i := range q.Samples {
			r.issueSample(q, q.Samples[i])
		}
	}()
}

// issueSample sends one predict request, holding an in-flight window slot
// until its response arrives. The inflight count is raised BEFORE the request
// becomes visible in the pending map: whichever side settles it (reader,
// failure drain, or this writer on a write error) balances it exactly once.
func (r *Remote) issueSample(q *loadgen.Query, s loadgen.QuerySample) {
	r.window <- struct{}{}
	r.inflight.Add(1)
	id := r.nextID.Add(1)
	rc := r.conns[r.next.Add(1)%uint64(len(r.conns))]

	rc.mu.Lock()
	if rc.dead {
		// The connection already failed: nothing will read a response, so
		// settle immediately as dropped (the failure itself was recorded by
		// fail). The run terminates invalid instead of hanging.
		rc.mu.Unlock()
		r.settle(q, loadgen.Response{SampleID: s.ID, Dropped: true})
		return
	}
	rc.pending[id] = pendingRequest{query: q, sampleID: s.ID}
	rc.mu.Unlock()

	req := serve.PredictRequest{ID: id, SampleIndex: s.Index}
	if r.cfg.Deadline > 0 {
		req.Deadline = time.Now().Add(r.cfg.Deadline)
	}
	err := rc.write(func(w io.Writer) error { return serve.WritePredictRequest(w, req) })
	if err != nil {
		// The request never reached the server; settle it locally if the
		// reader has not already done so while failing the connection.
		rc.mu.Lock()
		_, mine := rc.pending[id]
		delete(rc.pending, id)
		rc.mu.Unlock()
		if mine {
			if !r.closing.Load() {
				r.errs.add(fmt.Errorf("backend %s: sending sample %d: %w", r.cfg.Name, s.Index, err))
			}
			r.settle(q, loadgen.Response{SampleID: s.ID, Dropped: true})
		}
	}
}

// settle releases the window slot and completes one sample's response.
func (r *Remote) settle(q *loadgen.Query, resp loadgen.Response) {
	<-r.window
	q.Complete([]loadgen.Response{resp})
	r.inflight.Done()
}

// readLoop demultiplexes one connection's responses until it closes. On a
// transport failure every request still pending on the connection is settled
// as dropped, so the LoadGen terminates (invalid) instead of hanging.
func (rc *remoteConn) readLoop() {
	br := bufio.NewReader(rc.c)
	for {
		frame, err := serve.ReadClientFrame(br)
		if err != nil {
			rc.fail(err)
			return
		}
		switch frame.Type {
		case serve.MsgPredict:
			rc.resolve(frame.Predict)
		case serve.MsgMetrics:
			rc.mu.Lock()
			ch := rc.metrics[frame.MetricsID]
			delete(rc.metrics, frame.MetricsID)
			rc.mu.Unlock()
			if ch != nil {
				ch <- frame.MetricsJSON
			}
		}
	}
}

// resolve routes one predict response back to its query.
func (rc *remoteConn) resolve(resp serve.PredictResponse) {
	rc.mu.Lock()
	entry, ok := rc.pending[resp.ID]
	delete(rc.pending, resp.ID)
	rc.mu.Unlock()
	if !ok {
		return // already settled by a write failure
	}
	out := loadgen.Response{SampleID: entry.sampleID}
	switch resp.Status {
	case serve.StatusOK:
		out.Data = resp.Data
	case serve.StatusRejected:
		rc.r.rejected.Add(1)
		out.Dropped = true
	case serve.StatusExpired:
		rc.r.expired.Add(1)
		out.Dropped = true
	default: // StatusError and anything unknown: recorded AND dropped, so
		// the run is invalid even for callers that never drain Errors.
		rc.r.errs.add(fmt.Errorf("backend %s: server reported %v for sample id %d", rc.r.cfg.Name, resp.Status, entry.sampleID))
		out.Dropped = true
	}
	rc.r.settle(entry.query, out)
}

// fail kills a broken connection and settles everything pending on it.
// Setting dead under the same lock that guards registration guarantees no
// request can be registered after the drain and never settled.
func (rc *remoteConn) fail(err error) {
	rc.c.Close()
	rc.mu.Lock()
	rc.dead = true
	pending := rc.pending
	rc.pending = make(map[uint64]pendingRequest)
	metrics := rc.metrics
	rc.metrics = make(map[uint64]chan []byte)
	rc.mu.Unlock()
	if !rc.r.closing.Load() && len(pending) > 0 {
		rc.r.errs.add(fmt.Errorf("backend %s: connection failed with %d requests outstanding: %w", rc.r.cfg.Name, len(pending), err))
	}
	for _, entry := range pending {
		rc.r.settle(entry.query, loadgen.Response{SampleID: entry.sampleID, Dropped: true})
	}
	for _, ch := range metrics {
		close(ch)
	}
}

// FlushQueries implements loadgen.SUT: once every issued sample has been
// written (feeders drained), the end-of-series flush is forwarded so the
// server's batcher stops holding partial batches open.
func (r *Remote) FlushQueries() {
	r.feeders.Wait()
	r.control(serve.MsgFlush)
}

// Reopen re-arms the server's batcher for a new query series;
// loadgen.StartTest calls it at the start of every run. The metrics
// round-trip after the control frame is a barrier: the server reads frames
// per connection in order, so when the reply arrives the reopen has been
// applied — queries issued after Reopen returns (on any connection) can no
// longer be dispatched in the previous series' pass-through mode.
func (r *Remote) Reopen() {
	r.control(serve.MsgReopen)
	_, _ = r.ServerMetrics()
}

// control sends a bodyless control frame on the first connection.
func (r *Remote) control(msgType byte) {
	if len(r.conns) == 0 {
		return
	}
	rc := r.conns[0]
	err := rc.write(func(w io.Writer) error { return serve.WriteControl(w, msgType) })
	if err != nil && !r.closing.Load() {
		r.errs.add(fmt.Errorf("backend %s: sending control frame %d: %w", r.cfg.Name, msgType, err))
	}
}

// ServerMetrics fetches a metrics snapshot from the server.
func (r *Remote) ServerMetrics() (serve.Snapshot, error) {
	var snap serve.Snapshot
	if len(r.conns) == 0 {
		return snap, fmt.Errorf("backend %s: no connections", r.cfg.Name)
	}
	rc := r.conns[0]
	id := r.nextID.Add(1)
	ch := make(chan []byte, 1)
	rc.mu.Lock()
	if rc.dead {
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: connection is down", r.cfg.Name)
	}
	rc.metrics[id] = ch
	rc.mu.Unlock()

	if err := rc.write(func(w io.Writer) error { return serve.WriteMetricsRequest(w, id) }); err != nil {
		rc.mu.Lock()
		delete(rc.metrics, id)
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: requesting metrics: %w", r.cfg.Name, err)
	}
	select {
	case data, ok := <-ch:
		if !ok {
			return snap, fmt.Errorf("backend %s: connection closed before metrics arrived", r.cfg.Name)
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			return snap, fmt.Errorf("backend %s: decoding metrics: %w", r.cfg.Name, err)
		}
		return snap, nil
	case <-time.After(10 * time.Second):
		rc.mu.Lock()
		delete(rc.metrics, id)
		rc.mu.Unlock()
		return snap, fmt.Errorf("backend %s: metrics request timed out", r.cfg.Name)
	}
}

// Wait blocks until every issued request has been answered (or settled by a
// connection failure). The harness calls it after the LoadGen reports
// completion, like Native.Wait.
func (r *Remote) Wait() {
	r.feeders.Wait()
	r.inflight.Wait()
}

// Errors returns transport and server-side inference errors observed so far.
// Rejected and expired requests are NOT errors — they are shed load, counted
// by Rejected/Expired and reflected in the run's validity via dropped
// responses.
func (r *Remote) Errors() []error { return r.errs.all() }

// Rejected returns how many requests the server's admission control shed.
func (r *Remote) Rejected() int64 { return r.rejected.Load() }

// Expired returns how many requests expired past their deadline while queued.
func (r *Remote) Expired() int64 { return r.expired.Load() }

// Close tears down the client's connections. In-flight requests settle as
// dropped without recording transport errors.
func (r *Remote) Close() error {
	r.closing.Store(true)
	var first error
	for _, rc := range r.conns {
		if err := rc.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
