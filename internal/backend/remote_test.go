package backend

import (
	"testing"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/loadgen"
	"mlperf/internal/model"
	"mlperf/internal/serve"
	"mlperf/internal/tensor"
)

// buildClassificationStack assembles a MobileNet engine, synthetic data set
// and QSL for the loopback serving tests.
func buildClassificationStack(t testing.TB) (model.Engine, *dataset.QSL) {
	t.Helper()
	m, err := model.NewMobileNetV1Mini(model.ClassifierConfig{Classes: 10, ImageSize: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Samples: 32, Classes: 10, Channels: 3, Height: 16, Width: 16, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	qsl, err := dataset.NewQSL(ds)
	if err != nil {
		t.Fatal(err)
	}
	return m, qsl
}

// startLoopback launches a serve.Server plus a connected Remote for it.
func startLoopback(t testing.TB, scfg serve.Config, rcfg RemoteConfig) (*serve.Server, *Remote) {
	t.Helper()
	srv, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	rcfg.Addr = srv.Addr()
	remote, err := NewRemote(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { remote.Close() })
	return srv, remote
}

// accuracyByIndex runs a Server-scenario accuracy sweep and returns each
// sample's response payload keyed by sample index.
func accuracyByIndex(t *testing.T, sut loadgen.SUT, qsl *dataset.QSL) map[int][]byte {
	t.Helper()
	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.Mode = loadgen.AccuracyMode
	settings.ServerTargetQPS = 5000
	settings.MinDuration = 0
	settings.MinQueryCount = 1
	out := make(map[int][]byte)
	settings.AccuracySink = func(e loadgen.AccuracyEntry) {
		data := make([]byte, len(e.Data))
		copy(data, e.Data)
		out[e.SampleIndex] = data
	}
	res, err := loadgen.StartTest(sut, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResponsesDropped != 0 {
		t.Fatalf("accuracy sweep dropped %d responses", res.ResponsesDropped)
	}
	return out
}

// TestRemoteBitIdenticalToNative is the tentpole acceptance test: a
// Server-scenario sweep through backend.Remote against a loopback
// serve.Server must produce byte-identical per-sample outputs to the
// in-process backend.Native path.
func TestRemoteBitIdenticalToNative(t *testing.T) {
	engine, qsl := buildClassificationStack(t)

	native, err := NewNative(NativeConfig{Engine: engine, Store: qsl, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	nativeOut := accuracyByIndex(t, native, qsl)
	native.Wait()
	if errs := native.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}

	_, remote := startLoopback(t,
		serve.Config{Engine: engine, Store: qsl, Workers: 2, BatchWait: time.Millisecond},
		RemoteConfig{Conns: 2})
	remoteOut := accuracyByIndex(t, remote, qsl)
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}

	if len(remoteOut) != len(nativeOut) || len(remoteOut) != qsl.TotalSampleCount() {
		t.Fatalf("coverage: native %d, remote %d, want %d", len(nativeOut), len(remoteOut), qsl.TotalSampleCount())
	}
	for idx, want := range nativeOut {
		got, ok := remoteOut[idx]
		if !ok {
			t.Fatalf("sample %d missing from the remote sweep", idx)
		}
		if string(got) != string(want) {
			t.Errorf("sample %d: remote %q != native %q", idx, got, want)
		}
	}
}

// TestRemoteServerScenarioValid: a provisioned loopback server sustains a
// modest Server-scenario load with a valid run.
func TestRemoteServerScenarioValid(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	_, remote := startLoopback(t,
		serve.Config{Engine: engine, Store: qsl, BatchWait: time.Millisecond},
		RemoteConfig{})

	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 64
	settings.MinDuration = 100 * time.Millisecond
	settings.ServerTargetQPS = 200
	settings.ServerTargetLatency = 250 * time.Millisecond
	res, err := loadgen.StartTest(remote, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if !res.Valid {
		t.Fatalf("run invalid: %v", res.ValidityMessages)
	}
	if res.ResponsesDropped != 0 || remote.Rejected() != 0 {
		t.Errorf("dropped %d, rejected %d on a provisioned server", res.ResponsesDropped, remote.Rejected())
	}
	snap, err := remote.ServerMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Completed == 0 || snap.ServiceP99 <= 0 {
		t.Errorf("server metrics not populated: %+v", snap)
	}
}

// TestRemoteOfflineScenario: the offline scenario's single merged query
// streams through the bounded server queue under client flow control without
// a single reject.
func TestRemoteOfflineScenario(t *testing.T) {
	engine, qsl := buildClassificationStack(t)
	_, remote := startLoopback(t,
		serve.Config{Engine: engine, Store: qsl, QueueDepth: 64, BatchWait: time.Millisecond},
		RemoteConfig{MaxInFlight: 32})

	settings := loadgen.DefaultSettings(loadgen.Offline)
	settings.MinSampleCount = 512
	settings.MinDuration = 0
	res, err := loadgen.StartTest(remote, qsl, settings)
	if err != nil {
		t.Fatal(err)
	}
	remote.Wait()
	if errs := remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if !res.Valid {
		t.Fatalf("offline run invalid: %v", res.ValidityMessages)
	}
	if res.SamplesCompleted != res.SamplesIssued {
		t.Errorf("completed %d of %d samples", res.SamplesCompleted, res.SamplesIssued)
	}
	if remote.Rejected() != 0 {
		t.Errorf("%d rejects despite client flow control", remote.Rejected())
	}
}

// slowEngine simulates an under-provisioned accelerator: fixed service time
// per batch regardless of batch size.
type slowEngine struct {
	delay time.Duration
}

func (e *slowEngine) Name() string       { return "slow" }
func (e *slowEngine) Kind() dataset.Kind { return dataset.KindImageClassification }

func (e *slowEngine) Predict(samples []*dataset.Sample, _ *tensor.Scratch) ([]model.Output, error) {
	time.Sleep(e.delay)
	out := make([]model.Output, len(samples))
	for i, s := range samples {
		out[i] = model.Output{Kind: dataset.KindImageClassification, Class: s.Index}
	}
	return out, nil
}

type fixedStore struct{}

func (fixedStore) Get(index int) (*dataset.Sample, error) {
	return &dataset.Sample{Index: index}, nil
}

// TestRemoteOverloadReportsInvalidRun is the overload satellite: a
// Server-scenario run against a deliberately under-provisioned serve
// instance must terminate (not hang), count its rejects, and be reported
// invalid — shed load is never silent.
func TestRemoteOverloadReportsInvalidRun(t *testing.T) {
	srv, remote := startLoopback(t,
		serve.Config{
			Engine: &slowEngine{delay: 5 * time.Millisecond}, Store: fixedStore{},
			Workers: 1, QueueDepth: 4, MaxBatch: 2, BatchWait: 100 * time.Microsecond,
			Policy: serve.RejectNewest,
		},
		RemoteConfig{MaxInFlight: 512})

	qsl, err := dataset.NewQSL(mustImages(t))
	if err != nil {
		t.Fatal(err)
	}
	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 200
	settings.MinDuration = 50 * time.Millisecond
	settings.ServerTargetQPS = 4000 // far beyond ~400/s of service capacity
	settings.ServerTargetLatency = 5 * time.Millisecond

	done := make(chan struct{})
	var res *loadgen.Result
	go func() {
		defer close(done)
		res, err = loadgen.StartTest(remote, qsl, settings)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("overloaded run hung instead of terminating")
	}
	if err != nil {
		t.Fatal(err)
	}
	remote.Wait()

	if res.Valid {
		t.Error("overloaded run reported valid")
	}
	if res.ResponsesDropped == 0 {
		t.Error("no dropped responses counted")
	}
	if remote.Rejected() == 0 {
		t.Error("client counted no rejects")
	}
	if res.QueriesCompleted != res.QueriesIssued {
		t.Errorf("only %d of %d queries completed", res.QueriesCompleted, res.QueriesIssued)
	}
	snap := srv.Metrics()
	if snap.Rejected == 0 {
		t.Error("server metrics counted no rejects")
	}
	if int64(snap.Rejected) != remote.Rejected() {
		t.Errorf("server rejected %d, client observed %d", snap.Rejected, remote.Rejected())
	}
	found := false
	for _, msg := range res.ValidityMessages {
		if len(msg) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no validity messages explaining the invalid run")
	}
}

func mustImages(t testing.TB) *dataset.SyntheticImages {
	t.Helper()
	ds, err := dataset.NewSyntheticImages(dataset.ImageConfig{
		Samples: 32, Classes: 10, Channels: 3, Height: 8, Width: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestRemoteServerDeathDoesNotHang: queries issued around and after the
// server going away must all complete (as dropped) rather than hang — on a
// dead connection the client settles locally.
func TestRemoteServerDeathDoesNotHang(t *testing.T) {
	srv, remote := startLoopback(t,
		serve.Config{
			Engine: &slowEngine{delay: 2 * time.Millisecond}, Store: fixedStore{},
			Workers: 1, MaxBatch: 1, BatchWait: 100 * time.Microsecond,
		},
		RemoteConfig{Conns: 2, MaxInFlight: 64})

	issue := func(id uint64) chan []loadgen.Response {
		q := &loadgen.Query{ID: id, Samples: []loadgen.QuerySample{{ID: id, Index: int(id)}}}
		ch := make(chan []loadgen.Response, 1)
		q.SetCompletionHandler(func(_ *loadgen.Query, rs []loadgen.Response) { ch <- rs })
		remote.IssueQuery(q)
		return ch
	}
	var chans []chan []loadgen.Response
	for i := uint64(1); i <= 8; i++ {
		chans = append(chans, issue(i))
	}
	srv.Close() // server drains what it admitted, then the conns die
	for i := uint64(9); i <= 16; i++ {
		chans = append(chans, issue(i))
	}
	var dropped int
	for i, ch := range chans {
		select {
		case rs := <-ch:
			if rs[0].Dropped {
				dropped++
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("query %d never completed after server death", i+1)
		}
	}
	done := make(chan struct{})
	go func() { remote.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Remote.Wait hung after server death")
	}
	if dropped == 0 {
		t.Error("no queries dropped despite the server dying mid-run")
	}
}

// TestRemoteDeadlineExpiry: requests stamped with a client deadline expire
// server-side under load instead of being served late.
func TestRemoteDeadlineExpiry(t *testing.T) {
	_, remote := startLoopback(t,
		serve.Config{
			Engine: &slowEngine{delay: 20 * time.Millisecond}, Store: fixedStore{},
			Workers: 1, QueueDepth: 64, MaxBatch: 1, BatchWait: 100 * time.Microsecond,
		},
		RemoteConfig{Deadline: 10 * time.Millisecond, MaxInFlight: 64})

	// Enough back-to-back queries that later ones must expire while queued
	// behind 20ms services with a 10ms deadline.
	const n = 8
	queries := make([]*loadgen.Query, n)
	results := make([]chan []loadgen.Response, n)
	for i := range queries {
		q := &loadgen.Query{ID: uint64(i), Samples: []loadgen.QuerySample{{ID: uint64(i), Index: i}}}
		ch := make(chan []loadgen.Response, 1)
		q.SetCompletionHandler(func(_ *loadgen.Query, rs []loadgen.Response) { ch <- rs })
		queries[i], results[i] = q, ch
		remote.IssueQuery(q)
	}
	remote.FlushQueries()
	var dropped int
	for i, ch := range results {
		select {
		case rs := <-ch:
			if rs[0].Dropped {
				dropped++
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d never completed", i)
		}
	}
	remote.Wait()
	if dropped == 0 {
		t.Error("no deadline expiries under sustained overload")
	}
	if remote.Expired() == 0 {
		t.Error("client counted no expired requests")
	}
}
