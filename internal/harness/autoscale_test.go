package harness

import (
	"testing"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/capacity"
	"mlperf/internal/core"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

func buildSmall(t *testing.T) *Assembly {
	t.Helper()
	a, err := BuildNative(core.ImageClassificationLight, BuildOptions{DatasetSamples: 32, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// offlineBurst drives one short saturating Offline run through the remote,
// returning the result. Drops (rejects under a tiny queue) are expected and
// terminate cleanly.
func offlineBurst(t *testing.T, dep *LoopbackDeployment, samples int) *loadgen.Result {
	t.Helper()
	s := loadgen.DefaultSettings(loadgen.Offline)
	s.MinSampleCount = samples
	s.MinDuration = 0
	res, err := loadgen.StartTest(dep.Remote, dep.Assembly.QSL, s)
	if err != nil {
		t.Fatal(err)
	}
	dep.Remote.Wait()
	return res
}

func waitAllUp(t *testing.T, dep *LoopbackDeployment) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for dep.Remote.DownReplicas() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("fleet never converged to all replicas up")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStandbySpawnRetireCycle: a standby slot starts down and retired, spawns
// into service on demand, carries traffic, and drain-retires back out without
// disturbing the rest of the fleet.
func TestStandbySpawnRetireCycle(t *testing.T) {
	a := buildSmall(t)
	dep, err := a.ServeLoopback(ServeOptions{
		Replicas: 1,
		Standby:  1,
		Server:   serve.Config{Workers: 2, BatchWait: time.Millisecond},
		Client: backend.RemoteConfig{
			MaxInFlight: 32, RedialInitial: time.Millisecond, RedialMax: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if dep.ActiveReplicas() != 1 || dep.ReplicaActive(1) {
		t.Fatalf("fresh deployment: active=%d, slot1=%v", dep.ActiveReplicas(), dep.ReplicaActive(1))
	}
	if !dep.Remote.Retired(1) {
		t.Fatal("standby slot not retired in the client")
	}
	if res := offlineBurst(t, dep, 64); res.ResponsesDropped != 0 {
		t.Fatalf("run with an empty standby slot dropped %d responses", res.ResponsesDropped)
	}

	if err := dep.SpawnReplica(1); err != nil {
		t.Fatal(err)
	}
	if dep.ActiveReplicas() != 2 {
		t.Fatalf("after spawn: %d active", dep.ActiveReplicas())
	}
	waitAllUp(t, dep)
	if res := offlineBurst(t, dep, 512); res.ResponsesDropped != 0 {
		t.Fatalf("post-spawn run dropped %d responses", res.ResponsesDropped)
	}
	if dep.Replica(1).Metrics().Completed == 0 {
		t.Fatal("spawned replica served nothing")
	}

	if err := dep.RetireReplica(1); err != nil {
		t.Fatal(err)
	}
	if dep.ActiveReplicas() != 1 {
		t.Fatalf("after retire: %d active", dep.ActiveReplicas())
	}
	completed := dep.Replica(1).Metrics().Completed
	if res := offlineBurst(t, dep, 64); res.ResponsesDropped != 0 {
		t.Fatalf("post-retire run dropped %d responses", res.ResponsesDropped)
	}
	if got := dep.Replica(1).Metrics().Completed; got != completed {
		t.Fatalf("retired replica kept serving: %d -> %d", completed, got)
	}

	// The cycle repeats: the slot spawns again on the same address.
	if err := dep.SpawnReplica(1); err != nil {
		t.Fatal(err)
	}
	waitAllUp(t, dep)
	if dep.ActiveReplicas() != 2 {
		t.Fatalf("after respawn: %d active", dep.ActiveReplicas())
	}
}

// TestAutoscalerGrowsFleetUnderLoad: with a deliberately undersized replica
// (workers 1, queue 1) the saturating bursts force rejects; the autoscaler
// reads them as pressure and spawns the standby slot, then drain-retires it
// once the fleet goes idle. Ticks are driven manually so the policy is
// deterministic.
func TestAutoscalerGrowsFleetUnderLoad(t *testing.T) {
	a := buildSmall(t)
	dep, err := a.ServeLoopback(ServeOptions{
		Replicas: 1,
		Standby:  1,
		Server:   serve.Config{Workers: 1, QueueDepth: 1, MaxBatch: 1, BatchWait: 100 * time.Microsecond},
		Client: backend.RemoteConfig{
			MaxInFlight: 64, RedialInitial: time.Millisecond, RedialMax: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	auto := dep.Autoscale(capacity.AutoscaleConfig{
		GrowAfter: 1, ShrinkAfter: 2, Cooldown: time.Second,
	})

	now := time.Now()
	auto.Tick(now) // prime
	res := offlineBurst(t, dep, 256)
	if res.ResponsesDropped == 0 {
		t.Fatal("burst produced no rejects — the pressure signal never fired")
	}
	auto.Tick(now.Add(2 * time.Second)) // pressure tick -> spawn
	if dep.ActiveReplicas() != 2 {
		t.Fatalf("autoscaler did not grow the fleet: %d active", dep.ActiveReplicas())
	}
	events := auto.Events()
	if len(events) != 1 || events[0].Resource != serve.ResourceReplicas ||
		events[0].From != 1 || events[0].To != 2 {
		t.Fatalf("autoscale events = %+v", events)
	}
	waitAllUp(t, dep)

	// No traffic: two idle ticks past the cooldown retire the spawned slot.
	auto.Tick(now.Add(4 * time.Second))
	auto.Tick(now.Add(6 * time.Second))
	if dep.ActiveReplicas() != 1 {
		t.Fatalf("autoscaler did not shrink the idle fleet: %d active", dep.ActiveReplicas())
	}
	events = auto.Events()
	if len(events) != 2 || events[1].From != 2 || events[1].To != 1 {
		t.Fatalf("autoscale events after shrink = %+v", events)
	}
}

// TestManageCapacityGrowsRealPool: the capacity manager, driven by manual
// ticks against a real undersized server, turns observed rejects into live
// worker/queue growth recorded as server-side resize events.
func TestManageCapacityGrowsRealPool(t *testing.T) {
	a := buildSmall(t)
	dep, err := a.ServeLoopback(ServeOptions{
		Server: serve.Config{Workers: 1, QueueDepth: 2, MaxBatch: 1, BatchWait: 100 * time.Microsecond},
		Client: backend.RemoteConfig{MaxInFlight: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	managers := dep.ManageCapacity(capacity.Config{
		GrowAfter: 1, Cooldown: time.Millisecond,
		MaxWorkers: 8, MaxQueue: 256,
		Env: &capacity.Env{CPULimit: 4, GOMAXPROCS: 4, Source: "test"},
	})
	m := managers[0]

	now := time.Now()
	m.Tick(now) // prime
	res := offlineBurst(t, dep, 256)
	if res.ResponsesDropped == 0 {
		t.Fatal("burst produced no rejects against the tiny pool")
	}
	m.Tick(now.Add(time.Second))

	lim, err := dep.Server.Limits("")
	if err != nil {
		t.Fatal(err)
	}
	if lim.Workers != 2 || lim.QueueDepth != 4 {
		t.Fatalf("pool after pressure tick: workers %d queue %d, want 2/4", lim.Workers, lim.QueueDepth)
	}
	snap := dep.Server.Metrics()
	if len(snap.Resizes) != 2 {
		t.Fatalf("server recorded %d resize events, want workers+queue pair: %+v", len(snap.Resizes), snap.Resizes)
	}
	if len(m.Events()) != 2 {
		t.Fatalf("manager recorded %d events", len(m.Events()))
	}
}

// TestManagerSurvivesReplicaRestart: a manager attached to a slot keeps
// driving whatever server currently occupies it — a kill and restart does not
// strand the manager on the dead server.
func TestManagerSurvivesReplicaRestart(t *testing.T) {
	a := buildSmall(t)
	dep, err := a.ServeLoopback(ServeOptions{
		Server: serve.Config{Workers: 1, QueueDepth: 2, MaxBatch: 1, BatchWait: 100 * time.Microsecond},
		Client: backend.RemoteConfig{
			MaxInFlight: 64, RedialInitial: time.Millisecond, RedialMax: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	managers := dep.ManageCapacity(capacity.Config{
		GrowAfter: 1, Cooldown: time.Millisecond,
		MaxWorkers: 8, MaxQueue: 256,
		Env: &capacity.Env{CPULimit: 4, GOMAXPROCS: 4, Source: "test"},
	})
	m := managers[0]

	if err := dep.KillReplica(0); err != nil {
		t.Fatal(err)
	}
	m.Tick(time.Now()) // ticking a dead replica must not panic or wedge
	// Wait for the client to notice the crash before restarting, so the
	// post-restart traffic goes through rejoined connections rather than
	// racing the crash detection.
	deadline := time.Now().Add(10 * time.Second)
	for dep.Remote.DownReplicas() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("killed replica never marked down")
		}
		time.Sleep(time.Millisecond)
	}
	if err := dep.RestartReplica(0); err != nil {
		t.Fatal(err)
	}
	waitAllUp(t, dep)

	// The manager now drives the restarted server.
	now := time.Now()
	m.Tick(now) // reset the tick baseline to the new server's counters
	res := offlineBurst(t, dep, 256)
	if res.ResponsesDropped == 0 {
		t.Fatal("burst produced no rejects against the restarted tiny pool")
	}
	m.Tick(now.Add(time.Second))
	lim, err := dep.Replica(0).Limits("")
	if err != nil {
		t.Fatal(err)
	}
	if lim.Workers != 2 {
		t.Fatalf("manager did not grow the restarted server: workers %d", lim.Workers)
	}
}
