package tensor

import "testing"

// TestTuningSettersAndDefaults pins the override/restore contract of the two
// tuning knobs.
func TestTuningSettersAndDefaults(t *testing.T) {
	if got := ParallelFlopThreshold(); got != defaultParallelFlopThreshold {
		t.Fatalf("default flop threshold = %d, want %d", got, defaultParallelFlopThreshold)
	}
	if got := GEMMPanelBytes(); got != defaultGEMMPanelBytes {
		t.Fatalf("default panel bytes = %d, want %d", got, defaultGEMMPanelBytes)
	}

	prev := SetParallelFlopThreshold(123)
	if prev != defaultParallelFlopThreshold {
		t.Errorf("SetParallelFlopThreshold returned %d, want previous %d", prev, defaultParallelFlopThreshold)
	}
	if got := ParallelFlopThreshold(); got != 123 {
		t.Errorf("flop threshold after set = %d, want 123", got)
	}
	// Non-positive restores the default.
	SetParallelFlopThreshold(0)
	if got := ParallelFlopThreshold(); got != defaultParallelFlopThreshold {
		t.Errorf("flop threshold after reset = %d, want default", got)
	}

	SetGEMMPanelBytes(64 << 10)
	if got := GEMMPanelBytes(); got != 64<<10 {
		t.Errorf("panel bytes after set = %d", got)
	}
	SetGEMMPanelBytes(-1)
	if got := GEMMPanelBytes(); got != defaultGEMMPanelBytes {
		t.Errorf("panel bytes after reset = %d, want default", got)
	}
}

// TestFlopThresholdBothSides runs the same workload with the threshold forced
// above it (serial dispatch) and below it (parallel dispatch) and requires
// bit-identical outputs: the knob is a scheduling decision, never a numerics
// change. The conv workload also crosses the batched sample-panel split,
// exercising the panel-budget knob on both sides of its default.
func TestFlopThresholdBothSides(t *testing.T) {
	defer SetParallelFlopThreshold(0)
	defer SetGEMMPanelBytes(0)

	a := seededTensor(1, 96, 64)
	b := seededTensor(2, 64, 80)

	SetParallelFlopThreshold(1) // 96*64*80 MACs >> 1: parallel dispatch
	parallelOut, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelFlopThreshold(1 << 30) // far above the workload: inline
	serialOut, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "MatMul across threshold", parallelOut, serialOut)

	// Batched convolution: shrink the panel budget so the batch splits into
	// many sample panels, then grow it so one panel covers everything.
	input := seededTensor(3, 8, 6, 12, 12) // [C=8, N=6, 12, 12]
	kernels := seededTensor(4, 12, 8, 3, 3)
	bias := seededTensor(5, 12)
	opts := Conv2DOptions{Stride: 1, Padding: 1}
	run := func(threshold, panel int) *Tensor {
		SetParallelFlopThreshold(threshold)
		SetGEMMPanelBytes(panel)
		dst := MustNew(12, 6, 12, 12)
		if err := Conv2DBatchedInto(dst, input, kernels, bias, opts, PostNone, nil); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	ref := run(1<<30, 0)           // inline, default panel split
	small := run(1, 4*8*3*3*144+1) // parallel dispatch, one sample per panel
	big := run(1, 1<<30)           // parallel dispatch, whole batch in one panel
	requireBitEqual(t, "batched conv small panels", ref, small)
	requireBitEqual(t, "batched conv one panel", ref, big)
}

// seededTensor builds a deterministic pseudo-random tensor without pulling in
// the stats package (tensor must stay dependency-light).
func seededTensor(seed uint64, shape ...int) *Tensor {
	t := MustNew(shape...)
	x := seed*2862933555777941757 + 3037000493
	for i := range t.data {
		x = x*2862933555777941757 + 3037000493
		t.data[i] = float32(int32(x>>33)) / (1 << 30)
	}
	return t
}

func requireBitEqual(t *testing.T, label string, got, want *Tensor) {
	t.Helper()
	if !SameShape(got, want) {
		t.Fatalf("%s: shape %v vs %v", label, got.shape, want.shape)
	}
	for i := range got.data {
		if got.data[i] != want.data[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, got.data[i], want.data[i])
		}
	}
}
