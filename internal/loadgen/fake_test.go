package loadgen

import (
	"encoding/binary"
	"sync"
	"time"
)

// fakeQSL is an in-memory QuerySampleLibrary test double.
type fakeQSL struct {
	mu          sync.Mutex
	total       int
	perf        int
	loaded      map[int]bool
	loadCalls   int
	unloadCalls int
	failLoad    bool
}

func newFakeQSL(total, perf int) *fakeQSL {
	return &fakeQSL{total: total, perf: perf, loaded: make(map[int]bool)}
}

func (q *fakeQSL) Name() string                { return "fake-qsl" }
func (q *fakeQSL) TotalSampleCount() int       { return q.total }
func (q *fakeQSL) PerformanceSampleCount() int { return q.perf }

func (q *fakeQSL) LoadSamplesToRAM(indices []int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.failLoad {
		return errLoadFailure
	}
	q.loadCalls++
	for _, i := range indices {
		q.loaded[i] = true
	}
	return nil
}

func (q *fakeQSL) UnloadSamplesFromRAM(indices []int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.unloadCalls++
	for _, i := range indices {
		delete(q.loaded, i)
	}
	return nil
}

var errLoadFailure = errTest("simulated load failure")

type errTest string

func (e errTest) Error() string { return string(e) }

// fakeSUT completes every sample after a configurable service latency. When
// async is true, completion happens on a separate goroutine (like a real
// accelerator queue); otherwise it is inline.
type fakeSUT struct {
	name    string
	latency time.Duration
	async   bool

	mu            sync.Mutex
	queries       []*Query
	sampleIndices []int
	flushed       int
}

func newFakeSUT(latency time.Duration, async bool) *fakeSUT {
	return &fakeSUT{name: "fake-sut", latency: latency, async: async}
}

func (s *fakeSUT) Name() string { return s.name }

func (s *fakeSUT) IssueQuery(q *Query) {
	s.mu.Lock()
	s.queries = append(s.queries, q)
	for _, smp := range q.Samples {
		s.sampleIndices = append(s.sampleIndices, smp.Index)
	}
	s.mu.Unlock()

	respond := func() {
		if s.latency > 0 {
			time.Sleep(s.latency)
		}
		responses := make([]Response, len(q.Samples))
		for i, smp := range q.Samples {
			data := make([]byte, 8)
			binary.LittleEndian.PutUint64(data, uint64(smp.Index))
			responses[i] = Response{SampleID: smp.ID, Data: data}
		}
		q.Complete(responses)
	}
	if s.async {
		go respond()
	} else {
		respond()
	}
}

func (s *fakeSUT) FlushQueries() {
	s.mu.Lock()
	s.flushed++
	s.mu.Unlock()
}

func (s *fakeSUT) queryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

func (s *fakeSUT) seenIndices() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.sampleIndices))
	copy(out, s.sampleIndices)
	return out
}
