package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// SIMD dispatch tests. The contract under test:
//
//   - off and avx2 are BIT-IDENTICAL on every shape, offset, epilogue and
//     dispatch route — the avx2 kernels perform the scalar arithmetic
//     element-for-element, so randomized bit-equality is the oracle.
//   - fma is NOT bit-identical (fused rounding, re-associated dot
//     reductions); it is validated against a relative-error oracle.
//   - Tier changes are atomic and race-free against running kernels.

// withTier runs fn with the dispatch tier pinned, restoring the previous tier
// after. It reports false (and does not run fn) when the CPU lacks the tier.
func withTier(t *testing.T, tier SIMDTier, fn func()) bool {
	t.Helper()
	if !SIMDSupported(tier) {
		return false
	}
	prev := SetSIMD(tier)
	defer SetSIMD(prev)
	fn()
	return true
}

// unalignedFloats returns an n-float slice whose backing data starts off the
// allocator's natural alignment by off floats, to prove the kernels tolerate
// any 4-byte-aligned base address.
func unalignedFloats(n, off int) []float32 {
	backing := make([]float32, n+off)
	return backing[off : off+n]
}

// fillRand fills dst with standard-normal values.
func fillRand(r *rand.Rand, dst []float32) {
	for i := range dst {
		dst[i] = float32(r.NormFloat64())
	}
}

// refGEMM is the plain-scalar oracle: ascending-p accumulation from the bias,
// no zero-skip, no blocking — the arithmetic the determinism contract pins.
func refGEMM(c, a, b, bias []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			if bias != nil {
				s = bias[i]
			}
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

// gemmShapes covers ragged dimensions on both sides of every kernel split:
// the 4-row grouping (m mod 4), the 8-wide vector tail (n mod 8), the dot
// kernel's 4/2/1-column blocks, and odd primes that never align with any
// block size.
var gemmShapes = [][3]int{
	{1, 1, 1}, {1, 1, 8}, {1, 7, 9}, {2, 3, 5},
	{3, 13, 7}, {4, 8, 16}, {5, 17, 23}, {7, 31, 8},
	{8, 64, 64}, {9, 97, 41}, {13, 29, 103}, {16, 5, 200},
	{31, 101, 17}, {64, 64, 64}, {3, 300, 130},
}

func TestGEMMBitEquivalenceAVX2(t *testing.T) {
	if !SIMDSupported(SIMDAVX2) {
		t.Skip("CPU lacks AVX2")
	}
	r := rand.New(rand.NewSource(71))
	for _, sh := range gemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, off := range []int{0, 1, 3} {
			a := unalignedFloats(m*k, off)
			b := unalignedFloats(k*n, off)
			fillRand(r, a)
			fillRand(r, b)
			var bias []float32
			if r.Intn(2) == 0 {
				bias = unalignedFloats(m, off)
				fillRand(r, bias)
			}
			want := make([]float32, m*n)
			withTier(t, SIMDOff, func() { gemmInto(want, a, b, bias, m, k, n) })
			got := unalignedFloats(m*n, off)
			withTier(t, SIMDAVX2, func() { gemmInto(got, a, b, bias, m, k, n) })
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("shape %dx%dx%d off %d: element %d: avx2 %08x vs off %08x",
						m, k, n, off, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
			ref := make([]float32, m*n)
			refGEMM(ref, a, b, bias, m, k, n)
			for i := range ref {
				if math.Float32bits(want[i]) != math.Float32bits(ref[i]) {
					t.Fatalf("shape %dx%dx%d off %d: element %d: off-tier %08x vs plain scalar %08x",
						m, k, n, off, i, math.Float32bits(want[i]), math.Float32bits(ref[i]))
				}
			}
		}
	}
}

// TestGEMMSerialOracleAcrossTiers pins the public contract: at off and avx2,
// MatMul equals MatMulSerial bit-for-bit on randomized shapes.
func TestGEMMSerialOracleAcrossTiers(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for _, tier := range []SIMDTier{SIMDOff, SIMDAVX2} {
		ran := withTier(t, tier, func() {
			for trial := 0; trial < 25; trial++ {
				m, k, n := 1+r.Intn(50), 1+r.Intn(60), 1+r.Intn(70)
				a := randFilled(r, m, k)
				b := randFilled(r, k, n)
				got, err := MatMul(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want, err := MatMulSerial(a, b)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, got, want, "MatMul vs serial oracle at "+tier.String())
			}
		})
		if !ran {
			t.Logf("tier %v unsupported, skipped", tier)
		}
	}
}

// TestGEMMPanelPostOpsAcrossTiers drives gemmPanelInto — packed panels, every
// fused epilogue — at avx2 vs off.
func TestGEMMPanelPostOpsAcrossTiers(t *testing.T) {
	if !SIMDSupported(SIMDAVX2) {
		t.Skip("CPU lacks AVX2")
	}
	r := rand.New(rand.NewSource(73))
	for _, post := range []PostOp{PostNone, PostReLU, PostReLU6} {
		for _, sh := range [][3]int{{5, 9, 24}, {4, 16, 31}, {7, 33, 40}, {2, 5, 7}} {
			m, k, jn := sh[0], sh[1], sh[2]
			a := unalignedFloats(m*k, 1)
			bp := unalignedFloats(k*jn, 1)
			bias := unalignedFloats(m, 1)
			fillRand(r, a)
			fillRand(r, bp)
			fillRand(r, bias)
			want := make([]float32, m*jn)
			withTier(t, SIMDOff, func() { gemmPanelInto(want, a, bp, bias, m, k, jn, 0, jn, post) })
			got := make([]float32, m*jn)
			withTier(t, SIMDAVX2, func() { gemmPanelInto(got, a, bp, bias, m, k, jn, 0, jn, post) })
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("post %v shape %v: element %d: avx2 %08x vs off %08x",
						post, sh, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// relErr returns |got-want| / max(|want|, 1).
func relErr(got, want float32) float64 {
	d := math.Abs(float64(got) - float64(want))
	scale := math.Abs(float64(want))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

// fmaTol bounds the divergence of fused rounding plus re-associated
// reductions from the scalar oracle over the k ranges tested here.
const fmaTol = 1e-4

// TestFMAToleranceOracle validates the FMA tier: not bit-identical, but
// within relative error of the scalar reference on GEMM, panel and
// matrix-vector routes.
func TestFMAToleranceOracle(t *testing.T) {
	if !SIMDSupported(SIMDFMA) {
		t.Skip("CPU lacks FMA")
	}
	r := rand.New(rand.NewSource(74))
	withTier(t, SIMDFMA, func() {
		for _, sh := range gemmShapes {
			m, k, n := sh[0], sh[1], sh[2]
			a := unalignedFloats(m*k, 1)
			b := unalignedFloats(k*n, 1)
			bias := unalignedFloats(m, 1)
			fillRand(r, a)
			fillRand(r, b)
			fillRand(r, bias)
			got := make([]float32, m*n)
			gemmInto(got, a, b, bias, m, k, n)
			want := make([]float32, m*n)
			refGEMM(want, a, b, bias, m, k, n)
			for i := range want {
				if e := relErr(got[i], want[i]); e > fmaTol {
					t.Fatalf("shape %dx%dx%d element %d: fma %v vs scalar %v (rel err %g)",
						m, k, n, i, got[i], want[i], e)
				}
			}
		}
		// Matrix-vector: k >= 32 engages the re-associated dot kernel.
		for _, mk := range [][2]int{{5, 32}, {9, 100}, {33, 257}, {4, 31}} {
			m, k := mk[0], mk[1]
			a := unalignedFloats(m*k, 1)
			x := unalignedFloats(k, 1)
			fillRand(r, a)
			fillRand(r, x)
			y := make([]float32, m)
			matVecInto(y, a, x, m, k)
			for i := 0; i < m; i++ {
				var s float32
				for p := 0; p < k; p++ {
					s += a[i*k+p] * x[p]
				}
				if e := relErr(y[i], s); e > fmaTol {
					t.Fatalf("matVec %dx%d row %d: fma %v vs scalar %v (rel err %g)", m, k, i, y[i], s, e)
				}
			}
		}
	})
}

// TestMatVecBitExactBelowFMA pins the documented limitation: the avx2 tier
// leaves the matrix-vector path scalar (a bit-exact vectorization of a single
// dot product does not exist), so off and avx2 agree bit-for-bit.
func TestMatVecBitExactBelowFMA(t *testing.T) {
	if !SIMDSupported(SIMDAVX2) {
		t.Skip("CPU lacks AVX2")
	}
	r := rand.New(rand.NewSource(75))
	m, k := 37, 211
	a := randFilled(r, m, k)
	x := randFilled(r, k)
	var want, got *Tensor
	withTier(t, SIMDOff, func() { want, _ = MatVec(a, x) })
	withTier(t, SIMDAVX2, func() { got, _ = MatVec(a, x) })
	requireBitIdentical(t, got, want, "MatVec off vs avx2")
}

// FuzzGEMMBitEquivalence fuzzes shape, seed and slice offset; whatever the
// inputs, avx2 must match off bit-for-bit.
func FuzzGEMMBitEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(9), uint8(17), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(int64(3), uint8(13), uint8(64), uint8(129), uint8(3))
	f.Add(int64(4), uint8(5), uint8(251), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, mr, kr, nr, offr uint8) {
		if !SIMDSupported(SIMDAVX2) {
			t.Skip("CPU lacks AVX2")
		}
		m, k, n := 1+int(mr)%96, 1+int(kr), 1+int(nr)
		off := int(offr) % 4
		r := rand.New(rand.NewSource(seed))
		a := unalignedFloats(m*k, off)
		b := unalignedFloats(k*n, off)
		bias := unalignedFloats(m, off)
		fillRand(r, a)
		fillRand(r, b)
		fillRand(r, bias)
		if seed%2 == 0 {
			bias = nil
		}
		want := make([]float32, m*n)
		withTier(t, SIMDOff, func() { gemmInto(want, a, b, bias, m, k, n) })
		got := make([]float32, m*n)
		withTier(t, SIMDAVX2, func() { gemmInto(got, a, b, bias, m, k, n) })
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("m=%d k=%d n=%d off=%d seed=%d: element %d: avx2 %08x vs off %08x",
					m, k, n, off, seed, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	})
}

func TestParseSIMDTier(t *testing.T) {
	cases := []struct {
		in   string
		tier SIMDTier
		ok   bool
	}{
		{"off", SIMDOff, true}, {"scalar", SIMDOff, true}, {"none", SIMDOff, true},
		{"avx2", SIMDAVX2, true}, {"AVX2", SIMDAVX2, true}, {"fma", SIMDFMA, true},
		{" fma ", SIMDFMA, true}, {"", defaultSIMDTier(), true}, {"auto", defaultSIMDTier(), true},
		{"avx512", SIMDOff, false}, {"yes", SIMDOff, false},
	}
	for _, tc := range cases {
		tier, ok := ParseSIMDTier(tc.in)
		if tier != tc.tier || ok != tc.ok {
			t.Errorf("ParseSIMDTier(%q) = (%v, %v), want (%v, %v)", tc.in, tier, ok, tc.tier, tc.ok)
		}
	}
	for tier, s := range map[SIMDTier]string{SIMDOff: "off", SIMDAVX2: "avx2", SIMDFMA: "fma"} {
		if tier.String() != s {
			t.Errorf("String(%d) = %q, want %q", tier, tier.String(), s)
		}
	}
}

func TestSetSIMDClampsToSupported(t *testing.T) {
	prev := ActiveSIMD()
	defer SetSIMD(prev)
	SetSIMD(SIMDFMA)
	if got := ActiveSIMD(); got > SupportedSIMD() {
		t.Errorf("ActiveSIMD after SetSIMD(fma) = %v, exceeds supported %v", got, SupportedSIMD())
	}
	SetSIMD(SIMDOff)
	if got := ActiveSIMD(); got != SIMDOff {
		t.Errorf("ActiveSIMD after SetSIMD(off) = %v", got)
	}
	if restored := SetSIMD(prev); restored != SIMDOff {
		t.Errorf("SetSIMD returned %v, want previous off", restored)
	}
}

func TestCurrentKernelConfig(t *testing.T) {
	cfg := CurrentKernelConfig()
	if cfg.SIMD != ActiveSIMD().String() {
		t.Errorf("KernelConfig.SIMD = %q, want %q", cfg.SIMD, ActiveSIMD().String())
	}
	if cfg.FlopThreshold != ParallelFlopThreshold() || cfg.PanelBytes != GEMMPanelBytes() {
		t.Errorf("KernelConfig knobs = (%d, %d), want (%d, %d)",
			cfg.FlopThreshold, cfg.PanelBytes, ParallelFlopThreshold(), GEMMPanelBytes())
	}
}

// TestSetSIMDConcurrentWithKernels swaps tiers while GEMMs run on other
// goroutines; the race detector proves the dispatch is safely atomic, and
// every result must match one of the bit-exact tiers' output (tier swaps
// never tear a single kernel invocation... each invocation reads the tier
// per dispatch point, so a swap mid-GEMM may mix kernels across panels — the
// off<->avx2 swap keeps that bit-exact by construction).
func TestSetSIMDConcurrentWithKernels(t *testing.T) {
	if !SIMDSupported(SIMDAVX2) {
		t.Skip("CPU lacks AVX2")
	}
	prev := ActiveSIMD()
	defer SetSIMD(prev)
	r := rand.New(rand.NewSource(76))
	m, k, n := 16, 40, 48
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fillRand(r, a)
	fillRand(r, b)
	want := make([]float32, m*n)
	SetSIMD(SIMDOff)
	gemmInto(want, a, b, nil, m, k, n)

	stop := make(chan struct{})
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				SetSIMD(SIMDAVX2)
			} else {
				SetSIMD(SIMDOff)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]float32, m*n)
			for iter := 0; iter < 200; iter++ {
				gemmInto(c, a, b, nil, m, k, n)
				for i := range want {
					if math.Float32bits(c[i]) != math.Float32bits(want[i]) {
						t.Errorf("concurrent tier swap: element %d diverged", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-swapDone
}

// TestLogActiveSIMD logs the live dispatch tier; scripts/bench.sh scrapes the
// line to record which tier produced BENCH_PR8.json.
func TestLogActiveSIMD(t *testing.T) {
	t.Logf("simd-tier: %s", ActiveSIMD())
	t.Logf("simd-supported: %s", SupportedSIMD())
}
