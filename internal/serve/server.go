// Package serve is the suite's network serving subsystem: a production-style
// inference server that exposes model.Engines over a loopback TCP socket, so
// every LoadGen scenario can run across a real network boundary — with
// queueing, serialization and connection concurrency on the measured path —
// instead of an in-process function call.
//
// One Server hosts one or more named engines (the network pair of
// internal/multitenant: several models behind one listener, each with its own
// admission queue, dynamic batcher and worker pool), and each hosted model
// owns the three mechanisms that bound achieved QPS in a real datacenter
// submission (the phenomena the paper's Server scenario exists to measure):
//
//   - Admission control: a bounded FIFO queue with a configurable overload
//     policy. RejectNewest turns away arrivals when the queue is full;
//     ShedOldest drops the queue head (the request most likely to already be over
//     its deadline) to admit the newcomer. Either way the shed request is
//     answered immediately with StatusRejected — overload is reported, never
//     silent — and per-request deadlines expire queued requests before they
//     waste service time.
//
//   - Dynamic batching: queued requests coalesce into one batched
//     Engine.Predict call, up to MaxBatch within a BatchWait window, with
//     backend.Batching's end-of-series semantics (MsgFlush switches to
//     pass-through so stragglers are not held hostage by an armed timer;
//     MsgReopen re-arms for the next run).
//
//   - A worker pool: N workers drain batches concurrently through the
//     engine's pooled scratch-arena inference path, so service parallelism
//     and batch formation are decoupled.
//
// Observability is part of the contract: each model tracks queue depth, a
// dispatched-batch-size histogram, queue/service latency percentiles and
// reject/expire counts, served per model or merged across models as a
// Snapshot over the wire (MsgMetrics / MsgMetricsModel) for the benchmark
// report.
//
// Lifecycle is three-way: Drain gracefully retires the server (stop
// admitting, answer everything queued, keep answering health probes — with
// ProbeDraining, so a fault-tolerant client will not re-join it), Close
// drains then tears down, and Kill simulates a crash (listener and every
// connection die immediately, queued work is abandoned) for fault-injection
// tests. The V2 MsgProbe frame is the health-check handshake clients run on a
// fresh connection before readmitting a recovered server to routing.
//
// The LoadGen-facing client lives in backend.Remote, which implements
// loadgen.SUT over this package's protocol and can fan one SUT out over a
// replica set of Servers; see protocol.go for the wire format.
package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mlperf/internal/dataset"
	"mlperf/internal/model"
	"mlperf/internal/payload"
	"mlperf/internal/tensor"
	"mlperf/internal/trace"
)

// SampleStore provides samples by index. dataset.QSL satisfies it; it is
// declared here (structurally identical to backend.SampleStore) so the serve
// and backend packages stay dependency-free of each other in this direction.
type SampleStore interface {
	Get(index int) (*dataset.Sample, error)
}

// OverloadPolicy selects what admission control does when the queue is full.
type OverloadPolicy int

const (
	// PolicyDefault (the zero value) inherits the surrounding default: a
	// ModelConfig inherits the server-wide Config.Policy, and a Config
	// resolves to RejectNewest. This keeps the zero value meaningful while
	// letting a model explicitly pick either policy against any server-wide
	// setting.
	PolicyDefault OverloadPolicy = iota
	// RejectNewest answers the arriving request with StatusRejected and
	// leaves the queue untouched (classic tail drop).
	RejectNewest
	// ShedOldest rejects the queue head — the request that has waited
	// longest and is most likely past saving — and admits the newcomer.
	ShedOldest
)

// String returns the policy's CLI name.
func (p OverloadPolicy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case RejectNewest:
		return "reject"
	case ShedOldest:
		return "shed-oldest"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a CLI policy name.
func ParsePolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "reject", "":
		return RejectNewest, nil
	case "shed-oldest":
		return ShedOldest, nil
	default:
		return 0, fmt.Errorf("serve: unknown overload policy %q (want reject or shed-oldest)", s)
	}
}

// ModelConfig configures one named engine hosted by a Server. Zero-valued
// knobs inherit the Server Config's corresponding field.
type ModelConfig struct {
	// Name is the model id V2 predict frames address; required, unique within
	// the server, at most 255 bytes.
	Name string
	// Engine runs this model's inference; required.
	Engine model.Engine
	// Store resolves this model's sample indexes (defaults to Config.Store).
	Store SampleStore
	// Workers, QueueDepth, Policy, MaxBatch and BatchWait override the
	// server-wide defaults for this model (see Config for semantics).
	// PolicyDefault inherits Config.Policy.
	Workers    int
	QueueDepth int
	Policy     OverloadPolicy
	MaxBatch   int
	BatchWait  time.Duration
}

// Config configures a Server.
type Config struct {
	// Engine runs the inference for the server's default (unnamed) model.
	// Either Engine or at least one Models entry is required; when both are
	// set, Engine is hosted alongside the named models and answers V1 frames.
	Engine model.Engine
	// Store resolves the sample indexes arriving over the wire; required for
	// the default model and the fallback for Models entries without one. Like
	// the reference LoadGen's QSL, the data set is resident on the serving
	// side before the timed run.
	Store SampleStore
	// Models lists additional named engines hosted behind this listener, each
	// with its own admission queue, batcher and worker pool. V2 predict
	// frames route by model id. When exactly one model is hosted in total,
	// V1 frames route to it; with several and no default Engine, V1 predict
	// frames answer StatusError.
	Models []ModelConfig
	// Addr is the listen address; it defaults to "127.0.0.1:0" (loopback,
	// kernel-assigned port — read the bound address back with Addr).
	Addr string
	// Workers is the per-model inference worker count; it defaults to
	// runtime.GOMAXPROCS(0) floored at 2, matching backend.Native.
	Workers int
	// QueueDepth bounds each model's admission queue (default 1024). Arrivals
	// beyond it are shed according to Policy.
	QueueDepth int
	// Policy is the overload policy (default RejectNewest).
	Policy OverloadPolicy
	// MaxBatch caps a dispatched batch. It defaults to the engine's derived
	// micro-batch (model.BatchSizer) so dynamic batching feeds the batched
	// kernels exactly the size their cache residency was derived for, or 8
	// when the engine does not publish one.
	MaxBatch int
	// BatchWait is how long the dispatcher holds an under-full batch open
	// for stragglers (default 2ms). After an end-of-series flush it is
	// ignored (pass-through) until reopen.
	BatchWait time.Duration
	// WrapListener, when set, wraps the bound listener before the accept
	// loop starts. It exists for fault injection (internal/chaos wraps the
	// listener so accepted connections can sever, delay, truncate or corrupt
	// frames on a seeded schedule) and keeps this package free of any
	// dependency on the injector.
	WrapListener func(net.Listener) net.Listener
	// MetricsAddr, when set, binds an HTTP listener serving the Prometheus
	// text exposition of every hosted model's metrics at /metrics (use
	// "127.0.0.1:0" for a kernel-assigned port, read back with MetricsAddr).
	// External scrapers see exactly the counters the wire-protocol metrics
	// frames and audit.CheckServing reconcile. Empty disables the endpoint.
	MetricsAddr string
	// Tracer, when set, records server-side spans (admit, queue wait, batch
	// assembly, service, encode, reply) for requests arriving with a wire
	// trace id, tail-captures outlier requests regardless of sampling, and
	// exposes the retained records at /debug/trace on the metrics listener.
	// Nil disables all span recording at zero cost.
	Tracer *trace.Tracer
	// EnablePprof mounts net/http/pprof's profile handlers (/debug/pprof/*)
	// on the metrics listener, so a live server's CPU, heap, goroutine and
	// block profiles are reachable without a rebuild. Requires MetricsAddr.
	EnablePprof bool
	// Codec selects the payload encoding for predict responses. The zero
	// value is payload.CodecBinary (the allocation-free varint codec);
	// payload.CodecJSON keeps emitting the legacy JSON payloads for old
	// peers. Decoders on both ends sniff the payload's leading codec-version
	// byte, so mixed-codec fleets interoperate at the decoded level.
	Codec payload.Codec
}

// normalize validates the config and expands it into one ModelConfig per
// hosted engine (the default model keeps the empty name).
func (c *Config) normalize() ([]ModelConfig, error) {
	if c.Engine == nil && len(c.Models) == 0 {
		return nil, fmt.Errorf("serve: config needs an Engine or at least one Models entry")
	}
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
		if c.Workers < 2 {
			c.Workers = 2
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchWait <= 0 {
		c.BatchWait = 2 * time.Millisecond
	}

	for _, m := range c.Models {
		if m.Name == "" {
			return nil, fmt.Errorf("serve: Models entries need a Name")
		}
	}
	var models []ModelConfig
	if c.Engine != nil {
		models = append(models, ModelConfig{Name: "", Engine: c.Engine, Store: c.Store})
	}
	models = append(models, c.Models...)
	seen := make(map[string]bool, len(models))
	for i := range models {
		m := &models[i]
		if m.Engine == nil {
			return nil, fmt.Errorf("serve: model %q needs an Engine", m.Name)
		}
		if len(m.Name) > maxModelIDLen {
			return nil, fmt.Errorf("serve: model id %q is %d bytes, limit %d", m.Name, len(m.Name), maxModelIDLen)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("serve: duplicate model id %q", m.Name)
		}
		seen[m.Name] = true
		if m.Store == nil {
			m.Store = c.Store
		}
		if m.Store == nil {
			return nil, fmt.Errorf("serve: model %q needs a sample Store", m.Name)
		}
		if m.Workers <= 0 {
			m.Workers = c.Workers
		}
		if m.QueueDepth <= 0 {
			m.QueueDepth = c.QueueDepth
		}
		if m.Policy == PolicyDefault {
			m.Policy = c.Policy
		}
		if m.Policy == PolicyDefault {
			m.Policy = RejectNewest
		}
		if m.MaxBatch <= 0 {
			m.MaxBatch = c.MaxBatch
		}
		if m.MaxBatch <= 0 {
			if bs, ok := m.Engine.(model.BatchSizer); ok {
				m.MaxBatch = bs.PreferredBatch()
			}
			if m.MaxBatch <= 0 {
				m.MaxBatch = 8
			}
		}
		if m.BatchWait <= 0 {
			m.BatchWait = c.BatchWait
		}
	}
	return models, nil
}

// request is one admitted predict request flowing queue → batch → worker.
type request struct {
	id       uint64
	index    int
	deadline time.Time
	enqueued time.Time
	conn     *serverConn
	// tr is non-nil only when the request arrived with a wire trace id AND
	// the server has a tracer: the head-sampled path. Everything else pays
	// no per-request tracing cost beyond one nil check.
	tr *reqTrace
}

// reqTrace accumulates one head-sampled request's server-side stage
// timings as it flows admit → queue → batch → worker → response. It is
// touched by one goroutine at a time (the request moves between
// goroutines over channels, which order the accesses).
type reqTrace struct {
	id      uint64
	arrived time.Time // socket read-off (StageAdmit starts here)
	taken   time.Time // popped from the admission queue by the dispatcher
	service int64     // the batch's Engine.Predict duration, ns
	encode  int64     // this request's Output.Encode duration, ns
	// spans is the block carried back to the client in the traced
	// response; built on the success path, nil for rejected/expired/error
	// answers (the client then simply gets no server decomposition).
	spans *trace.WireSpans
}

// respWriteTimeout bounds every response write. A client that stops reading
// its socket (full kernel buffer) must not wedge a worker — after the
// deadline the write fails, the connection is closed (so its reader exits and
// later writes fail fast) and the worker moves on.
const respWriteTimeout = 10 * time.Second

// serverConn serializes response frames onto one accepted connection.
type serverConn struct {
	c   net.Conn
	wmu sync.Mutex
	w   *bufio.Writer
}

// writeFrame writes and flushes one frame; concurrent workers serialize here.
// A failed or timed-out write poisons the connection deliberately.
func (sc *serverConn) writeFrame(msgType byte, body []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.c.SetWriteDeadline(time.Now().Add(respWriteTimeout))
	err := writeFrame(sc.w, msgType, body)
	if err == nil {
		err = sc.w.Flush()
	}
	if err != nil {
		sc.c.Close()
		return err
	}
	return nil
}

// writeRawFrame writes and flushes one pre-assembled frame (header
// included) as a single contiguous write — the pooled-buffer response path.
// Failure semantics match writeFrame.
func (sc *serverConn) writeRawFrame(frame []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	sc.c.SetWriteDeadline(time.Now().Add(respWriteTimeout))
	_, err := sc.w.Write(frame)
	if err == nil {
		err = sc.w.Flush()
	}
	if err != nil {
		sc.c.Close()
		return err
	}
	return nil
}

// engineHost is one hosted model's serving machinery: admission queue,
// dispatcher, worker pool and metrics. Every hosted model gets its own, so
// one tenant's overload cannot reject another tenant's traffic.
type engineHost struct {
	cfg ModelConfig
	// codec is the payload encoding for this host's predict responses
	// (Config.Codec; the zero value is the binary codec).
	codec payload.Codec

	mu          sync.Mutex
	queue       []*request
	passthrough bool
	shutdown    bool

	// Live limits, initialized from cfg and moved by Server.Resize. workers
	// is the desired pool size; liveWorkers is how many worker goroutines
	// exist right now (growth spawns immediately, shrink retires workers at
	// their next batch boundary — never mid-batch).
	workers     int
	liveWorkers int
	queueDepth  int
	maxBatch    int

	// notify wakes the dispatcher (capacity 1; a dropped signal is fine
	// because the dispatcher re-checks state whenever it holds a token).
	notify  chan struct{}
	batchCh chan []*request

	metrics    *serverMetrics
	dispatchWG sync.WaitGroup
	workWG     sync.WaitGroup

	// mt is this model's trace state (nil when tracing is disabled).
	mt *trace.ModelTrace
}

// Server is a running inference server. New starts it listening; Close tears
// it down after draining admitted work.
type Server struct {
	ln net.Listener

	// hosts routes model ids to their serving machinery; defaultHost answers
	// V1 frames (nil when several models are hosted and none is the default).
	hosts       map[string]*engineHost
	hostList    []*engineHost
	defaultHost *engineHost

	mu       sync.Mutex
	shutdown bool
	conns    map[*serverConn]struct{}

	// scrape is the optional Prometheus endpoint (nil when disabled).
	scrape *scrapeServer

	// tracer is the optional span subsystem (nil when disabled).
	tracer *trace.Tracer

	// draining is set by Drain: the server stops admitting predict requests
	// (they answer StatusRejected) and probes answer ProbeDraining, but the
	// listener stays bound and every connection stays open until everything
	// admitted has been answered — a retiring replica never strands in-flight
	// work as hangs, and a router that probes before routing learns to stop
	// sending new work.
	draining  atomic.Bool
	drainOnce sync.Once

	acceptWG  sync.WaitGroup
	connWG    sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New validates the configuration, binds the listener and starts the accept
// loop plus each hosted model's dispatcher and worker pool. The server is
// serving when New returns.
func New(cfg Config) (*Server, error) {
	models, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listening on %s: %w", cfg.Addr, err)
	}
	if cfg.WrapListener != nil {
		ln = cfg.WrapListener(ln)
	}
	s := &Server{
		ln:     ln,
		hosts:  make(map[string]*engineHost, len(models)),
		conns:  make(map[*serverConn]struct{}),
		tracer: cfg.Tracer,
	}
	for _, mc := range models {
		// The batch channel's buffer is fixed at creation; floor it so a pool
		// grown well past its initial size still has dispatch slack.
		chCap := mc.Workers
		if chCap < 16 {
			chCap = 16
		}
		h := &engineHost{
			cfg:         mc,
			codec:       cfg.Codec,
			workers:     mc.Workers,
			liveWorkers: mc.Workers,
			queueDepth:  mc.QueueDepth,
			maxBatch:    mc.MaxBatch,
			notify:      make(chan struct{}, 1),
			batchCh:     make(chan []*request, chCap),
			metrics:     newServerMetrics(),
			mt:          cfg.Tracer.Model(mc.Name),
		}
		s.hosts[mc.Name] = h
		s.hostList = append(s.hostList, h)
		h.dispatchWG.Add(1)
		go h.dispatch()
		h.workWG.Add(mc.Workers)
		for i := 0; i < mc.Workers; i++ {
			go h.worker()
		}
	}
	// V1 frames route to the default engine, or to the single hosted model.
	if h, ok := s.hosts[""]; ok {
		s.defaultHost = h
	} else if len(s.hostList) == 1 {
		s.defaultHost = s.hostList[0]
	}
	if cfg.MetricsAddr != "" {
		scrape, err := newScrapeServer(cfg.MetricsAddr, s, cfg.EnablePprof)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.scrape = scrape
	}
	s.acceptWG.Add(1)
	go s.accept()
	return s, nil
}

// MetricsAddr returns the bound address of the Prometheus scrape endpoint,
// or "" when Config.MetricsAddr was unset.
func (s *Server) MetricsAddr() string {
	if s.scrape == nil {
		return ""
	}
	return s.scrape.addr()
}

// OnScrape registers an extra metrics source appended to every /metrics
// response after the server's own families. The capacity manager registers
// itself here so its limits, headroom estimate and decision counters are
// scraped from the same endpoint as the serving counters it acted on. No-op
// when the scrape endpoint is disabled.
func (s *Server) OnScrape(f func(io.Writer)) {
	if s.scrape != nil {
		s.scrape.register(f)
	}
}

// Addr returns the bound listen address (useful with the default ":0" port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Tracer returns the server's span subsystem, nil when tracing is disabled.
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Models lists the hosted model ids in configuration order (the default
// model, when present, is the empty string).
func (s *Server) Models() []string {
	names := make([]string, len(s.hostList))
	for i, h := range s.hostList {
		names[i] = h.cfg.Name
	}
	return names
}

// Metrics returns a point-in-time snapshot of the serving metrics, merged
// across every hosted model (for a single-model server this is that model's
// snapshot, labeled with its id).
func (s *Server) Metrics() Snapshot {
	snaps := make([]Snapshot, len(s.hostList))
	for i, h := range s.hostList {
		snaps[i] = h.snapshot()
	}
	if len(snaps) == 1 {
		return snaps[0]
	}
	return MergeSnapshots(snaps...)
}

// ModelMetrics returns one hosted model's snapshot.
func (s *Server) ModelMetrics(name string) (Snapshot, error) {
	h, ok := s.hosts[name]
	if !ok {
		return Snapshot{}, fmt.Errorf("serve: no hosted model %q", name)
	}
	return h.snapshot(), nil
}

// Drain begins graceful retirement: the server stops admitting predict
// requests (new arrivals answer StatusRejected, probes answer ProbeDraining)
// and blocks until everything already admitted has been served and its
// response written. The listener stays bound and connections stay open, so
// clients can still collect metrics and observe the draining verdict; Close
// completes the teardown. Safe to call repeatedly and concurrently with
// Close.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		for _, h := range s.hostList {
			h.mu.Lock()
			h.shutdown = true
			h.mu.Unlock()
			h.signal()
		}
		for _, h := range s.hostList {
			h.dispatchWG.Wait() // drains the queue, then closes batchCh
			h.workWG.Wait()     // finishes in-flight batches (responses written)
		}
	})
}

// Draining reports whether graceful drain (or full shutdown) has begun.
func (s *Server) Draining() bool {
	if s.draining.Load() {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// Close stops accepting connections, drains every admitted request (each gets
// its response), then closes remaining connections. Safe to call repeatedly.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.ln.Close()
		if s.scrape != nil {
			s.scrape.close()
		}
		s.mu.Lock()
		s.shutdown = true
		s.mu.Unlock()
		s.Drain()
		s.mu.Lock()
		for sc := range s.conns {
			sc.c.Close()
		}
		s.mu.Unlock()
		s.acceptWG.Wait()
		s.connWG.Wait()
	})
	return s.closeErr
}

// Kill tears the server down abruptly: the listener and every connection
// close immediately and admitted-but-unanswered requests are abandoned — no
// drain, no final responses. It simulates a crash for fault-injection tests
// (the client sees exactly what a real server death looks like: connections
// dying with requests in flight); production shutdown is Drain then Close.
// Safe to call repeatedly; Close after Kill is a no-op.
func (s *Server) Kill() error {
	s.closeOnce.Do(func() {
		s.closeErr = s.ln.Close()
		if s.scrape != nil {
			s.scrape.close()
		}
		s.mu.Lock()
		s.shutdown = true
		for sc := range s.conns {
			sc.c.Close()
		}
		s.mu.Unlock()
		for _, h := range s.hostList {
			h.mu.Lock()
			h.shutdown = true
			h.queue = nil // abandon queued work: a crash answers nothing
			h.mu.Unlock()
			h.signal()
		}
		for _, h := range s.hostList {
			h.dispatchWG.Wait()
			h.workWG.Wait()
		}
		s.acceptWG.Wait()
		s.connWG.Wait()
	})
	return s.closeErr
}

// accept runs the listener loop.
func (s *Server) accept() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.serveConn(c)
		}()
	}
}

// hostFor resolves a frame's model id to its engineHost; ok is false for an
// unknown id (and for V1 predict frames on an ambiguous multi-model server).
func (s *Server) hostFor(model string) (*engineHost, bool) {
	if model == "" {
		return s.defaultHost, s.defaultHost != nil
	}
	h, ok := s.hosts[model]
	return h, ok
}

// controlTargets resolves a control frame's model id: a named model controls
// itself, the empty id controls every hosted model (matching the V1 frames'
// whole-server semantics).
func (s *Server) controlTargets(model string) []*engineHost {
	if model == "" {
		return s.hostList
	}
	if h, ok := s.hosts[model]; ok {
		return []*engineHost{h}
	}
	return nil
}

// serveConn reads frames off one connection until it closes or misbehaves.
func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	sc := &serverConn{c: c, w: bufio.NewWriter(c)}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
	}()

	r := bufio.NewReader(c)
	for {
		msgType, bodyBuf, err := readFrameBuf(r)
		if err != nil {
			return // EOF, closed, or oversized frame
		}
		// handleFrame never retains body bytes (ids and indexes are parsed
		// out, model ids are copied into strings), so the pooled buffer goes
		// straight back — the read side of the zero-allocation steady state.
		ok := s.handleFrame(sc, msgType, bodyBuf.B)
		bodyBuf.Release()
		if !ok {
			return
		}
	}
}

// handleFrame dispatches one decoded frame; a false return drops the
// connection (malformed or unknown frame).
func (s *Server) handleFrame(sc *serverConn, msgType byte, body []byte) bool {
	modelID := ""
	if msgType >= MsgPredictModel && msgType <= MsgMetricsModel {
		// V2 frames carry a model id; metrics frames put theirs after the
		// request id so decodeIDPrefix applies to both versions.
		rest := body
		if msgType == MsgMetricsModel {
			if len(body) < 8 {
				return false
			}
			rest = body[8:]
		}
		var tail []byte
		var err error
		modelID, tail, err = splitModelID(rest)
		if err != nil {
			return false
		}
		if msgType == MsgMetricsModel {
			body = body[:8]
		} else {
			body = tail
		}
	}
	switch msgType {
	case MsgPredict, MsgPredictModel, MsgPredictTraced:
		var req PredictRequest
		var err error
		if msgType == MsgPredictTraced {
			// V3 carries its own model id ahead of the fixed body.
			req, err = decodePredictTracedRequest(body)
			modelID = req.Model
		} else {
			req, err = decodePredictRequest(body)
		}
		if err != nil {
			return false
		}
		h, ok := s.hostFor(modelID)
		if !ok {
			// Unroutable (unknown model id, or a V1 frame against several
			// hosted models): answered, never silently dropped.
			buf := AcquireBuffer(frameHeaderBytes + 9)
			buf.B = appendPredictResponseFrame(buf.B, req.ID, StatusError, nil)
			_ = sc.writeRawFrame(buf.B)
			buf.Release()
			return true
		}
		r := &request{id: req.ID, index: req.SampleIndex, deadline: req.Deadline, conn: sc}
		if req.TraceID != 0 && h.mt != nil {
			// Head-sampled and this server traces: record server spans. A
			// server without a tracer leaves tr nil and answers with a
			// plain frame — the graceful-degradation path.
			r.tr = &reqTrace{id: req.TraceID, arrived: time.Now()}
		}
		h.admit(r)
	case MsgFlush, MsgFlushModel:
		for _, h := range s.controlTargets(modelID) {
			h.flushSeries()
		}
	case MsgReopen, MsgReopenModel:
		for _, h := range s.controlTargets(modelID) {
			h.reopen()
		}
	case MsgMetrics, MsgMetricsModel:
		id, _, err := decodeIDPrefix(body)
		if err != nil {
			return false
		}
		var snap Snapshot
		if msgType == MsgMetricsModel {
			if h, ok := s.hosts[modelID]; ok {
				snap = h.snapshot()
			} else {
				// Unknown model: answered with an in-band error, like
				// unroutable predicts — never by dropping the connection.
				snap = Snapshot{Model: modelID, Error: fmt.Sprintf("no hosted model %q", modelID)}
			}
		} else {
			snap = s.Metrics()
		}
		data, err := json.Marshal(snap)
		if err != nil {
			return false
		}
		buf := AcquireBuffer(frameHeaderBytes + 8 + len(data))
		buf.B = appendIDPrefixFrame(buf.B, MsgMetrics, id, data)
		_ = sc.writeRawFrame(buf.B)
		buf.Release()
	case MsgProbe:
		id, _, err := decodeIDPrefix(body)
		if err != nil {
			return false
		}
		ready := ProbeReady
		if s.Draining() {
			ready = ProbeDraining
		}
		buf := AcquireBuffer(frameHeaderBytes + 9)
		buf.B = appendProbeResponseFrame(buf.B, id, ready)
		_ = sc.writeRawFrame(buf.B)
		buf.Release()
	default:
		return false // unknown message: drop the connection
	}
	return true
}

// snapshot assembles this host's labeled metrics snapshot.
func (h *engineHost) snapshot() Snapshot {
	h.mu.Lock()
	depth := len(h.queue)
	workers := h.workers
	maxBatch := h.maxBatch
	queueLimit := h.queueDepth
	h.mu.Unlock()
	snap := h.metrics.snapshot(depth, workers, maxBatch, queueLimit)
	snap.Model = h.cfg.Name
	kc := tensor.CurrentKernelConfig()
	snap.Kernel = &kc
	return snap
}

// ResizeRequest asks for new live limits on a hosted model. Zero fields leave
// the corresponding limit unchanged; Reason labels the recorded events (e.g.
// "startup-flag", "capacity-grow").
type ResizeRequest struct {
	Workers    int
	QueueDepth int
	MaxBatch   int
	Reason     string
}

// maxResizeLimit is the absolute ceiling any Resize can set, a guard against
// nonsense rather than a tuning knob.
const maxResizeLimit = 1 << 16

// Resize applies new live limits to one hosted model (or, with the empty
// model id, to every hosted model — matching the V1 control frames'
// whole-server semantics) and returns the events actually applied. Worker
// growth spawns immediately; worker shrink retires surplus workers at their
// next batch boundary (a batch in flight always completes on the worker that
// started it); queue shrink only lowers the admission bound — requests
// already queued are never evicted. A draining or closed server ignores the
// request (no events). Resize is the single live-reconfiguration path: CLI
// flags, the capacity manager and tests all route through it, and every
// applied change is recorded as a ResizeEvent in the model's metrics.
func (s *Server) Resize(model string, req ResizeRequest) ([]ResizeEvent, error) {
	for _, v := range [...]int{req.Workers, req.QueueDepth, req.MaxBatch} {
		if v < 0 || v > maxResizeLimit {
			return nil, fmt.Errorf("serve: resize limit %d out of range [0, %d]", v, maxResizeLimit)
		}
	}
	hosts := s.controlTargets(model)
	if hosts == nil {
		return nil, fmt.Errorf("serve: no hosted model %q", model)
	}
	var events []ResizeEvent
	for _, h := range hosts {
		events = append(events, h.resize(req)...)
	}
	return events, nil
}

// Limits reports one hosted model's current live limits.
type Limits struct {
	Workers    int
	QueueDepth int
	MaxBatch   int
}

// Limits returns the named model's live limits as of now.
func (s *Server) Limits(model string) (Limits, error) {
	h, ok := s.hosts[model]
	if !ok && model == "" && s.defaultHost != nil {
		h, ok = s.defaultHost, true
	}
	if !ok {
		return Limits{}, fmt.Errorf("serve: no hosted model %q", model)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return Limits{Workers: h.workers, QueueDepth: h.queueDepth, MaxBatch: h.maxBatch}, nil
}

// resize applies one model's limit changes and records the events.
func (h *engineHost) resize(req ResizeRequest) []ResizeEvent {
	now := time.Now()
	var events []ResizeEvent
	h.mu.Lock()
	if h.shutdown {
		h.mu.Unlock()
		return nil
	}
	apply := func(resource string, cur *int, to int) {
		if to <= 0 || to == *cur {
			return
		}
		events = append(events, ResizeEvent{
			Time: now, Model: h.cfg.Name, Resource: resource,
			From: *cur, To: to, Reason: req.Reason,
		})
		*cur = to
	}
	apply(ResourceWorkers, &h.workers, req.Workers)
	apply(ResourceQueue, &h.queueDepth, req.QueueDepth)
	apply(ResourceMaxBatch, &h.maxBatch, req.MaxBatch)
	for h.liveWorkers < h.workers {
		h.liveWorkers++
		h.workWG.Add(1)
		go h.worker()
	}
	h.mu.Unlock()
	if len(events) > 0 {
		h.metrics.addResizes(events)
		// A larger queue or batch cap can change the dispatcher's pending
		// decision; wake it so the new limits take effect immediately.
		h.signal()
	}
	return events
}

// signal wakes the dispatcher without blocking.
func (h *engineHost) signal() {
	select {
	case h.notify <- struct{}{}:
	default:
	}
}

// admit applies admission control to one arriving request and wakes the
// dispatcher. The shed victim (if any) is answered outside the queue lock.
// Requests arriving once shutdown has begun are rejected (Close still drains
// everything admitted before its flag was set).
func (h *engineHost) admit(r *request) {
	r.enqueued = time.Now()
	var shed *request
	rejected := false
	h.mu.Lock()
	switch {
	case h.shutdown:
		rejected = true
	case len(h.queue) >= h.queueDepth:
		if h.cfg.Policy == ShedOldest {
			shed = h.queue[0]
			h.queue = append(h.queue[1:], r)
		} else {
			rejected = true
		}
	default:
		h.queue = append(h.queue, r)
	}
	h.mu.Unlock()

	if rejected {
		h.metrics.addRejected()
		h.respond(r, StatusRejected, nil)
		return
	}
	h.metrics.addAdmitted()
	if shed != nil {
		h.metrics.addShed()
		h.respond(shed, StatusRejected, nil)
	}
	h.signal()
}

// flushSeries is the MsgFlush path: forward everything buffered now and stop
// holding batches open for stragglers (backend.Batching's end-of-series
// semantics).
func (h *engineHost) flushSeries() {
	h.mu.Lock()
	h.passthrough = true
	h.mu.Unlock()
	h.metrics.addFlush()
	h.signal()
}

// reopen re-arms batching for a new query series.
func (h *engineHost) reopen() {
	h.mu.Lock()
	h.passthrough = false
	h.mu.Unlock()
}

// dispatch forms batches from the admission queue and hands them to the
// worker pool. An under-full batch is held open up to BatchWait from its
// oldest request's arrival unless pass-through or shutdown forces it out.
func (h *engineHost) dispatch() {
	defer h.dispatchWG.Done()
	defer close(h.batchCh)
	for {
		h.mu.Lock()
		for len(h.queue) == 0 {
			if h.shutdown {
				h.mu.Unlock()
				return
			}
			h.mu.Unlock()
			<-h.notify
			h.mu.Lock()
		}
		if !(h.passthrough || h.shutdown || len(h.queue) >= h.maxBatch) {
			deadline := h.queue[0].enqueued.Add(h.cfg.BatchWait)
			h.mu.Unlock()
			h.waitForBatch(deadline)
			h.mu.Lock()
		}
		batch := h.takeLocked()
		h.mu.Unlock()
		if len(batch) > 0 {
			h.batchCh <- batch
		}
	}
}

// waitForBatch sleeps until the batch window closes: the queue fills to
// MaxBatch, pass-through/shutdown is flagged, or the deadline passes.
func (h *engineHost) waitForBatch(deadline time.Time) {
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			return
		case <-h.notify:
			h.mu.Lock()
			done := h.passthrough || h.shutdown || len(h.queue) >= h.maxBatch
			h.mu.Unlock()
			if done {
				return
			}
		}
	}
}

// takeLocked pops up to the live batch cap from the queue head. Caller holds
// h.mu.
func (h *engineHost) takeLocked() []*request {
	n := len(h.queue)
	if n > h.maxBatch {
		n = h.maxBatch
	}
	batch := make([]*request, n)
	copy(batch, h.queue[:n])
	var now time.Time
	for _, r := range batch {
		if r.tr != nil {
			if now.IsZero() {
				now = time.Now()
			}
			r.tr.taken = now
		}
	}
	h.queue = h.queue[n:]
	if len(h.queue) == 0 {
		h.queue = nil // release the backing array between bursts
	}
	return batch
}

// worker drains batches until the dispatcher closes the channel or a shrink
// retires it. The shrink check sits at the batch boundary: a worker never
// abandons a batch mid-flight, it finishes the one it holds and then leaves
// if the pool is over its desired size. During shutdown every worker stays to
// help drain, whatever the desired size says.
func (h *engineHost) worker() {
	defer h.workWG.Done()
	for batch := range h.batchCh {
		h.runBatch(batch)
		h.mu.Lock()
		retire := h.liveWorkers > h.workers && !h.shutdown
		if retire {
			h.liveWorkers--
		}
		h.mu.Unlock()
		if retire {
			return
		}
	}
}

// runBatch expires stale requests, resolves the survivors' samples and runs
// them through the engine as one batched Predict on the pooled scratch-arena
// path, answering each request on its own connection.
func (h *engineHost) runBatch(batch []*request) {
	started := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if !r.deadline.IsZero() && started.After(r.deadline) {
			h.metrics.addExpired(1)
			h.respond(r, StatusExpired, nil)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	h.metrics.observeBatch(len(live))

	samples := make([]*dataset.Sample, 0, len(live))
	reqs := make([]*request, 0, len(live))
	for _, r := range live {
		sample, err := h.cfg.Store.Get(r.index)
		if err != nil {
			h.metrics.addErrored()
			h.respond(r, StatusError, nil)
			continue
		}
		samples = append(samples, sample)
		reqs = append(reqs, r)
	}
	if len(samples) == 0 {
		return
	}

	// Time the batched Predict only when a traced request shares the batch
	// (every member charges the whole batch run to its service slot).
	traced := false
	for _, r := range reqs {
		if r.tr != nil {
			traced = true
			break
		}
	}
	var serviceStart time.Time
	if traced {
		serviceStart = time.Now()
	}
	outputs, err := h.cfg.Engine.Predict(samples, nil)
	if traced {
		serviceNs := time.Since(serviceStart).Nanoseconds()
		for _, r := range reqs {
			if r.tr != nil {
				r.tr.service = serviceNs
			}
		}
	}
	if err != nil || len(outputs) != len(samples) {
		// One bad sample poisons a whole batched Predict; retry sample by
		// sample so errors stay isolated (mirrors backend.Native).
		for i, r := range reqs {
			h.predictOne(r, samples[i], started)
		}
		return
	}
	for i, r := range reqs {
		h.finish(r, outputs[i], started)
	}
}

// predictOne is the per-sample isolation fallback after a failed batch.
func (h *engineHost) predictOne(r *request, sample *dataset.Sample, started time.Time) {
	var serviceStart time.Time
	if r.tr != nil {
		serviceStart = time.Now()
	}
	outputs, err := h.cfg.Engine.Predict([]*dataset.Sample{sample}, nil)
	if r.tr != nil {
		r.tr.service = time.Since(serviceStart).Nanoseconds()
	}
	if err != nil || len(outputs) != 1 {
		h.metrics.addErrored()
		h.respond(r, StatusError, nil)
		return
	}
	h.finish(r, outputs[0], started)
}

// finish encodes one prediction, records latencies and answers the request.
// Metrics are recorded BEFORE the response is written so a snapshot taken by
// a client that has seen all its responses is consistent (Completed covers
// them); service time therefore excludes the buffered loopback write.
//
// The untraced path — the steady state — assembles the entire response
// frame (header, id, status, payload) in one pooled buffer, encoding the
// output directly into it: no per-frame allocation and a single write. The
// head-sampled traced path encodes the payload separately so the encode
// stage can be timed and the span block can precede it in the frame.
func (h *engineHost) finish(r *request, out model.Output, started time.Time) {
	if r.tr == nil {
		buf := AcquireBuffer(frameHeaderBytes + 9 + 64)
		b := beginFrame(buf.B)
		b = binary.BigEndian.AppendUint64(b, r.id)
		b = append(b, byte(StatusOK))
		b, err := out.AppendTo(b, h.codec)
		if err != nil {
			buf.Release()
			h.metrics.addErrored()
			h.respond(r, StatusError, nil)
			return
		}
		buf.B = endFrame(b, 0, MsgPredict)
		queued := started.Sub(r.enqueued)
		service := time.Since(started)
		h.metrics.observeService(queued, service)
		if h.mt != nil {
			// Untraced request on a tracing server: feed the tail tracker so
			// outliers the sampling coin missed are still retained, with the
			// queue/service split this path already measures.
			e2e := (queued + service).Nanoseconds()
			if h.mt.Observe(e2e) {
				rec := &trace.Record{
					Model: h.cfg.Name, Origin: trace.OriginServer,
					Start: r.enqueued.UnixNano(), End2End: e2e, Tail: true,
				}
				rec.Stages[trace.StageQueue] = queued.Nanoseconds()
				rec.Stages[trace.StageService] = service.Nanoseconds()
				h.mt.Publish(rec)
			}
		}
		_ = r.conn.writeRawFrame(buf.B)
		buf.Release()
		return
	}

	encodeStart := time.Now()
	data := AcquireBuffer(64)
	db, err := out.AppendTo(data.B, h.codec)
	r.tr.encode = time.Since(encodeStart).Nanoseconds()
	if err != nil {
		data.Release()
		h.metrics.addErrored()
		h.respond(r, StatusError, nil)
		return
	}
	data.B = db
	queued := started.Sub(r.enqueued)
	service := time.Since(started)
	h.metrics.observeService(queued, service)
	// Build the span block the traced response carries back.
	r.tr.spans = &trace.WireSpans{
		RecvUnixNano: r.tr.arrived.UnixNano(),
		Admit:        nonNegNanos(r.enqueued.Sub(r.tr.arrived)),
		Queue:        nonNegNanos(r.tr.taken.Sub(r.enqueued)),
		Assembly:     nonNegNanos(started.Sub(r.tr.taken)),
		Service:      r.tr.service,
		Encode:       r.tr.encode,
	}
	h.respond(r, StatusOK, data.B)
	data.Release()
}

// nonNegNanos floors a duration at zero nanoseconds (stage boundaries taken
// from different clock reads can invert by a few nanoseconds).
func nonNegNanos(d time.Duration) int64 {
	if d < 0 {
		return 0
	}
	return d.Nanoseconds()
}

// respond writes one predict response; a write error means the client has
// gone away, which does not concern the serving loop. A head-sampled
// request answers with the V3 traced frame (span block included when the
// success path built one), times the write as its reply stage, and
// publishes the server-side record.
func (h *engineHost) respond(r *request, status Status, data []byte) {
	if r.tr == nil {
		buf := AcquireBuffer(frameHeaderBytes + 9 + len(data))
		buf.B = appendPredictResponseFrame(buf.B, r.id, status, data)
		_ = r.conn.writeRawFrame(buf.B)
		buf.Release()
		return
	}
	tr := r.tr
	replyStart := time.Now()
	buf := AcquireBuffer(frameHeaderBytes + 9 + 64 + len(data))
	buf.B = appendPredictTracedResponseFrame(buf.B, r.id, status, tr.spans, data)
	_ = r.conn.writeRawFrame(buf.B)
	buf.Release()
	replyNs := time.Since(replyStart).Nanoseconds()
	if h.mt == nil {
		return
	}
	e2e := time.Since(tr.arrived).Nanoseconds()
	rec := &trace.Record{
		TraceID: tr.id, Model: h.cfg.Name, Origin: trace.OriginServer,
		Start: tr.arrived.UnixNano(), End2End: e2e,
		Tail: h.mt.Observe(e2e),
	}
	if tr.spans != nil {
		rec.Stages[trace.StageAdmit] = tr.spans.Admit
		rec.Stages[trace.StageQueue] = tr.spans.Queue
		rec.Stages[trace.StageAssembly] = tr.spans.Assembly
		rec.Stages[trace.StageService] = tr.spans.Service
		rec.Stages[trace.StageEncode] = tr.spans.Encode
	}
	rec.Stages[trace.StageReply] = replyNs
	h.mt.Publish(rec)
}
