package model

import (
	"fmt"

	"mlperf/internal/nn"
	"mlperf/internal/tensor"
)

// TranslatorConfig configures the miniature GNMT-style translator.
type TranslatorConfig struct {
	Vocab         int
	EmbedDim      int
	HiddenSize    int
	EncoderLayers int
	DecoderLayers int
	MaxLen        int
	Seed          uint64
}

func (c *TranslatorConfig) normalize() error {
	if c.Vocab < 8 {
		return fmt.Errorf("model: translator vocabulary must hold at least 8 tokens, got %d", c.Vocab)
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = 16
	}
	if c.HiddenSize <= 0 {
		c.HiddenSize = 32
	}
	if c.EncoderLayers <= 0 {
		c.EncoderLayers = 2
	}
	if c.DecoderLayers <= 0 {
		c.DecoderLayers = 2
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 24
	}
	return nil
}

// GNMTMini is the miniature recurrent encoder–decoder translation model.
type GNMTMini struct {
	info       Info
	net        *nn.Seq2Seq
	footprint  int // per-sentence step-state bytes; micro-batch derives live
}

// NewGNMTMini builds the translator.
func NewGNMTMini(cfg TranslatorConfig) (*GNMTMini, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	net, err := nn.NewSeq2Seq("gnmt-mini", nn.Seq2SeqConfig{
		SrcVocab: cfg.Vocab, DstVocab: cfg.Vocab,
		EmbedDim: cfg.EmbedDim, HiddenSize: cfg.HiddenSize,
		EncoderLayers: cfg.EncoderLayers, DecoderLayers: cfg.DecoderLayers,
		MaxLen: cfg.MaxLen, Seed: cfg.Seed ^ 0x69273,
	})
	if err != nil {
		return nil, err
	}
	info, err := Describe(GNMT)
	if err != nil {
		return nil, err
	}
	info.Params = net.ParamCount()
	info.OpsPerInput = net.OpsPerToken() * int64(cfg.MaxLen)
	g := &GNMTMini{info: info, net: net}
	g.footprint = g.stepFootprintBytes()
	return g, nil
}

// stepFootprintBytes estimates the per-sentence working set of one batched
// decoder step: destination embedding, attention context, their
// concatenation, each decoder cell's gate buffers and fresh states, the
// output logits and the attention score vector. The recurrent stack's
// footprint is per step, not per layer-activation as in the CNNs, and it is
// small — which is exactly why the translator batches deep.
func (g *GNMTMini) stepFootprintBytes() int {
	h := g.net.HiddenSize
	e := g.net.DstEmbed.Dim
	elems := e + h + (e + h) + // embedding, context, concatenated step input
		len(g.net.Decoder)*(8*h+2*h) + // gate buffers (Wx·x, Wh·h) and new h/c per cell
		g.net.DstEmbed.Vocab + // logits column
		g.net.MaxLen // attention scores over the longest source
	return 4 * elems
}

// Info returns the model's metadata with Params and OpsPerInput filled in.
func (g *GNMTMini) Info() Info { return g.info }

// Translate implements Translator.
func (g *GNMTMini) Translate(tokens []int) ([]int, error) {
	return g.net.Translate(tokens)
}

// Weights implements WeightedModel.
func (g *GNMTMini) Weights() []*tensor.Tensor {
	var out []*tensor.Tensor
	out = append(out, g.net.SrcEmbed.Weights, g.net.DstEmbed.Weights)
	for _, c := range g.net.Encoder {
		out = append(out, c.Wx, c.Wh, c.Bias)
	}
	for _, c := range g.net.Decoder {
		out = append(out, c.Wx, c.Wh, c.Bias)
	}
	out = append(out, g.net.Output.Weights, g.net.Output.Bias)
	return out
}
