//go:build amd64

#include "textflag.h"

// AVX2/FMA GEMM microkernels. Every kernel vectorizes ACROSS OUTPUT COLUMNS
// with a broadcast A element: lane j of an accumulator register holds output
// element c[r][j], and the p loop walks k in ascending order, so each output
// element accumulates its own dot product in exactly the scalar kernels'
// order. The AVX2 kernels use separate VMULPS/VADDPS (one rounding each,
// matching Go's scalar mul-then-add on amd64, which never fuses) and are
// bit-identical to the scalar path; the FMA kernels use VFMADD231PS (one
// rounding per pair) and are validated by a tolerance oracle instead.
//
// Register conventions (all kernels):
//   SI  b-row cursor          R13 bStride in bytes
//   DI  output byte offset j  R12 p loop counter
//   R8-R11 c-row base pointers
//   AX-DX  a-row cursors (reloaded from the frame per column block)
// Y0-Y7 accumulate, Y8/Y9 hold the streamed B row, Y10 the broadcast A
// element, Y11 the product. R14 (goroutine) and X15 (ABI zero register) are
// never touched; every kernel runs NOSPLIT with no calls.

// func gemmBlock4AVX2(c0, c1, c2, c3, a0, a1, a2, a3, b *float32, k, bStride, jn int)
//
// For r in 0..3: c_r[j] += sum_{p<k} a_r[p]*b[p*bStride+j], j in [0, jn).
// jn must be a positive multiple of 8; c rows arrive seeded (bias).
// Columns advance 16 at a time (two YMM per row), with one 8-wide pass for
// a trailing half block.
TEXT ·gemmBlock4AVX2(SB), NOSPLIT, $0-96
	MOVQ bStride+80(FP), R13
	SHLQ $2, R13
	MOVQ c0+0(FP), R8
	MOVQ c1+8(FP), R9
	MOVQ c2+16(FP), R10
	MOVQ c3+24(FP), R11
	XORQ DI, DI

loop16:
	MOVQ jn+88(FP), AX
	SHLQ $2, AX
	SUBQ DI, AX
	CMPQ AX, $64
	JLT  tail8

	// Accumulators start from the caller-seeded c values (the bias).
	VMOVUPS (R8)(DI*1), Y0
	VMOVUPS 32(R8)(DI*1), Y1
	VMOVUPS (R9)(DI*1), Y2
	VMOVUPS 32(R9)(DI*1), Y3
	VMOVUPS (R10)(DI*1), Y4
	VMOVUPS 32(R10)(DI*1), Y5
	VMOVUPS (R11)(DI*1), Y6
	VMOVUPS 32(R11)(DI*1), Y7

	MOVQ a0+32(FP), AX
	MOVQ a1+40(FP), BX
	MOVQ a2+48(FP), CX
	MOVQ a3+56(FP), DX
	MOVQ b+64(FP), SI
	ADDQ DI, SI
	MOVQ k+72(FP), R12

p16:
	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9

	VBROADCASTSS (AX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y1, Y1

	VBROADCASTSS (BX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y2, Y2
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y3, Y3

	VBROADCASTSS (CX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y4, Y4
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y5, Y5

	VBROADCASTSS (DX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y6, Y6
	VMULPS Y9, Y10, Y11
	VADDPS Y11, Y7, Y7

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, CX
	ADDQ $4, DX
	ADDQ R13, SI
	DECQ R12
	JNE  p16

	VMOVUPS Y0, (R8)(DI*1)
	VMOVUPS Y1, 32(R8)(DI*1)
	VMOVUPS Y2, (R9)(DI*1)
	VMOVUPS Y3, 32(R9)(DI*1)
	VMOVUPS Y4, (R10)(DI*1)
	VMOVUPS Y5, 32(R10)(DI*1)
	VMOVUPS Y6, (R11)(DI*1)
	VMOVUPS Y7, 32(R11)(DI*1)

	ADDQ $64, DI
	JMP  loop16

tail8:
	CMPQ AX, $32
	JLT  done4avx

	VMOVUPS (R8)(DI*1), Y0
	VMOVUPS (R9)(DI*1), Y2
	VMOVUPS (R10)(DI*1), Y4
	VMOVUPS (R11)(DI*1), Y6

	MOVQ a0+32(FP), AX
	MOVQ a1+40(FP), BX
	MOVQ a2+48(FP), CX
	MOVQ a3+56(FP), DX
	MOVQ b+64(FP), SI
	ADDQ DI, SI
	MOVQ k+72(FP), R12

p8:
	VMOVUPS (SI), Y8

	VBROADCASTSS (AX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0
	VBROADCASTSS (BX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y2, Y2
	VBROADCASTSS (CX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y4, Y4
	VBROADCASTSS (DX), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y6, Y6

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, CX
	ADDQ $4, DX
	ADDQ R13, SI
	DECQ R12
	JNE  p8

	VMOVUPS Y0, (R8)(DI*1)
	VMOVUPS Y2, (R9)(DI*1)
	VMOVUPS Y4, (R10)(DI*1)
	VMOVUPS Y6, (R11)(DI*1)

done4avx:
	VZEROUPPER
	RET

// func gemmBlock4FMA(c0, c1, c2, c3, a0, a1, a2, a3, b *float32, k, bStride, jn int)
//
// gemmBlock4AVX2 with fused multiply-adds (relaxed rounding, opt-in tier).
TEXT ·gemmBlock4FMA(SB), NOSPLIT, $0-96
	MOVQ bStride+80(FP), R13
	SHLQ $2, R13
	MOVQ c0+0(FP), R8
	MOVQ c1+8(FP), R9
	MOVQ c2+16(FP), R10
	MOVQ c3+24(FP), R11
	XORQ DI, DI

floop16:
	MOVQ jn+88(FP), AX
	SHLQ $2, AX
	SUBQ DI, AX
	CMPQ AX, $64
	JLT  ftail8

	VMOVUPS (R8)(DI*1), Y0
	VMOVUPS 32(R8)(DI*1), Y1
	VMOVUPS (R9)(DI*1), Y2
	VMOVUPS 32(R9)(DI*1), Y3
	VMOVUPS (R10)(DI*1), Y4
	VMOVUPS 32(R10)(DI*1), Y5
	VMOVUPS (R11)(DI*1), Y6
	VMOVUPS 32(R11)(DI*1), Y7

	MOVQ a0+32(FP), AX
	MOVQ a1+40(FP), BX
	MOVQ a2+48(FP), CX
	MOVQ a3+56(FP), DX
	MOVQ b+64(FP), SI
	ADDQ DI, SI
	MOVQ k+72(FP), R12

fp16:
	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9

	VBROADCASTSS (AX), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS (BX), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS (CX), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS (DX), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, CX
	ADDQ $4, DX
	ADDQ R13, SI
	DECQ R12
	JNE  fp16

	VMOVUPS Y0, (R8)(DI*1)
	VMOVUPS Y1, 32(R8)(DI*1)
	VMOVUPS Y2, (R9)(DI*1)
	VMOVUPS Y3, 32(R9)(DI*1)
	VMOVUPS Y4, (R10)(DI*1)
	VMOVUPS Y5, 32(R10)(DI*1)
	VMOVUPS Y6, (R11)(DI*1)
	VMOVUPS Y7, 32(R11)(DI*1)

	ADDQ $64, DI
	JMP  floop16

ftail8:
	CMPQ AX, $32
	JLT  done4fma

	VMOVUPS (R8)(DI*1), Y0
	VMOVUPS (R9)(DI*1), Y2
	VMOVUPS (R10)(DI*1), Y4
	VMOVUPS (R11)(DI*1), Y6

	MOVQ a0+32(FP), AX
	MOVQ a1+40(FP), BX
	MOVQ a2+48(FP), CX
	MOVQ a3+56(FP), DX
	MOVQ b+64(FP), SI
	ADDQ DI, SI
	MOVQ k+72(FP), R12

fp8:
	VMOVUPS (SI), Y8

	VBROADCASTSS (AX), Y10
	VFMADD231PS Y8, Y10, Y0
	VBROADCASTSS (BX), Y10
	VFMADD231PS Y8, Y10, Y2
	VBROADCASTSS (CX), Y10
	VFMADD231PS Y8, Y10, Y4
	VBROADCASTSS (DX), Y10
	VFMADD231PS Y8, Y10, Y6

	ADDQ $4, AX
	ADDQ $4, BX
	ADDQ $4, CX
	ADDQ $4, DX
	ADDQ R13, SI
	DECQ R12
	JNE  fp8

	VMOVUPS Y0, (R8)(DI*1)
	VMOVUPS Y2, (R9)(DI*1)
	VMOVUPS Y4, (R10)(DI*1)
	VMOVUPS Y6, (R11)(DI*1)

done4fma:
	VZEROUPPER
	RET

// func gemmBlock1AVX2(c0, a0, b *float32, k, bStride, jn int)
//
// Single-row form: c0[j] += sum_{p<k} a0[p]*b[p*bStride+j], j in [0, jn),
// jn a positive multiple of 8. Columns advance 32 at a time (four YMM),
// then 8 at a time.
TEXT ·gemmBlock1AVX2(SB), NOSPLIT, $0-48
	MOVQ bStride+32(FP), R13
	SHLQ $2, R13
	MOVQ c0+0(FP), R8
	XORQ DI, DI

s1loop32:
	MOVQ jn+40(FP), AX
	SHLQ $2, AX
	SUBQ DI, AX
	CMPQ AX, $128
	JLT  s1tail8

	VMOVUPS (R8)(DI*1), Y0
	VMOVUPS 32(R8)(DI*1), Y1
	VMOVUPS 64(R8)(DI*1), Y2
	VMOVUPS 96(R8)(DI*1), Y3

	MOVQ a0+8(FP), AX
	MOVQ b+16(FP), SI
	ADDQ DI, SI
	MOVQ k+24(FP), R12

s1p32:
	VBROADCASTSS (AX), Y10
	VMOVUPS (SI), Y8
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0
	VMOVUPS 32(SI), Y8
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y1, Y1
	VMOVUPS 64(SI), Y8
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y2, Y2
	VMOVUPS 96(SI), Y8
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y3, Y3

	ADDQ $4, AX
	ADDQ R13, SI
	DECQ R12
	JNE  s1p32

	VMOVUPS Y0, (R8)(DI*1)
	VMOVUPS Y1, 32(R8)(DI*1)
	VMOVUPS Y2, 64(R8)(DI*1)
	VMOVUPS Y3, 96(R8)(DI*1)

	ADDQ $128, DI
	JMP  s1loop32

s1tail8:
	MOVQ jn+40(FP), BX
	SHLQ $2, BX
	SUBQ DI, BX
	CMPQ BX, $32
	JLT  s1done

	VMOVUPS (R8)(DI*1), Y0

	MOVQ a0+8(FP), AX
	MOVQ b+16(FP), SI
	ADDQ DI, SI
	MOVQ k+24(FP), R12

s1p8:
	VBROADCASTSS (AX), Y10
	VMOVUPS (SI), Y8
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0

	ADDQ $4, AX
	ADDQ R13, SI
	DECQ R12
	JNE  s1p8

	VMOVUPS Y0, (R8)(DI*1)

	ADDQ $32, DI
	JMP  s1tail8

s1done:
	VZEROUPPER
	RET

// func gemmBlock1FMA(c0, a0, b *float32, k, bStride, jn int)
//
// gemmBlock1AVX2 with fused multiply-adds (relaxed rounding, opt-in tier).
TEXT ·gemmBlock1FMA(SB), NOSPLIT, $0-48
	MOVQ bStride+32(FP), R13
	SHLQ $2, R13
	MOVQ c0+0(FP), R8
	XORQ DI, DI

f1loop32:
	MOVQ jn+40(FP), AX
	SHLQ $2, AX
	SUBQ DI, AX
	CMPQ AX, $128
	JLT  f1tail8

	VMOVUPS (R8)(DI*1), Y0
	VMOVUPS 32(R8)(DI*1), Y1
	VMOVUPS 64(R8)(DI*1), Y2
	VMOVUPS 96(R8)(DI*1), Y3

	MOVQ a0+8(FP), AX
	MOVQ b+16(FP), SI
	ADDQ DI, SI
	MOVQ k+24(FP), R12

f1p32:
	VBROADCASTSS (AX), Y10
	VMOVUPS (SI), Y8
	VFMADD231PS Y8, Y10, Y0
	VMOVUPS 32(SI), Y8
	VFMADD231PS Y8, Y10, Y1
	VMOVUPS 64(SI), Y8
	VFMADD231PS Y8, Y10, Y2
	VMOVUPS 96(SI), Y8
	VFMADD231PS Y8, Y10, Y3

	ADDQ $4, AX
	ADDQ R13, SI
	DECQ R12
	JNE  f1p32

	VMOVUPS Y0, (R8)(DI*1)
	VMOVUPS Y1, 32(R8)(DI*1)
	VMOVUPS Y2, 64(R8)(DI*1)
	VMOVUPS Y3, 96(R8)(DI*1)

	ADDQ $128, DI
	JMP  f1loop32

f1tail8:
	MOVQ jn+40(FP), BX
	SHLQ $2, BX
	SUBQ DI, BX
	CMPQ BX, $32
	JLT  f1done

	VMOVUPS (R8)(DI*1), Y0

	MOVQ a0+8(FP), AX
	MOVQ b+16(FP), SI
	ADDQ DI, SI
	MOVQ k+24(FP), R12

f1p8:
	VBROADCASTSS (AX), Y10
	VMOVUPS (SI), Y8
	VFMADD231PS Y8, Y10, Y0

	ADDQ $4, AX
	ADDQ R13, SI
	DECQ R12
	JNE  f1p8

	VMOVUPS Y0, (R8)(DI*1)

	ADDQ $32, DI
	JMP  f1tail8

f1done:
	VZEROUPPER
	RET

// func dotFMA(a, x *float32, k int) float32
//
// Four 8-wide FMA accumulators over k, reduced horizontally, scalar tail.
// The reduction re-associates the sum, so this kernel serves only the FMA
// tier's matrix-vector path (tolerance-validated).
TEXT ·dotFMA(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ x+8(FP), DI
	MOVQ k+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

d32:
	CMPQ CX, $32
	JLT  d8
	VMOVUPS (SI), Y4
	VMOVUPS (DI), Y5
	VFMADD231PS Y5, Y4, Y0
	VMOVUPS 32(SI), Y4
	VMOVUPS 32(DI), Y5
	VFMADD231PS Y5, Y4, Y1
	VMOVUPS 64(SI), Y4
	VMOVUPS 64(DI), Y5
	VFMADD231PS Y5, Y4, Y2
	VMOVUPS 96(SI), Y4
	VMOVUPS 96(DI), Y5
	VFMADD231PS Y5, Y4, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $32, CX
	JMP  d32

d8:
	CMPQ CX, $8
	JLT  dreduce
	VMOVUPS (SI), Y4
	VMOVUPS (DI), Y5
	VFMADD231PS Y5, Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  d8

dreduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER

dscalar:
	CMPQ CX, $0
	JEQ  ddone
	MOVSS (SI), X2
	MULSS (DI), X2
	ADDSS X2, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JMP  dscalar

ddone:
	MOVSS X0, ret+24(FP)
	RET
