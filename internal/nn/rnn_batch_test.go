package nn

import (
	"math"
	"math/rand"
	"testing"

	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

// randVec fills a fresh vector with normal values.
func randVec(r *rand.Rand, n int) *tensor.Tensor {
	t := tensor.MustNew(n)
	for i := range t.Data() {
		t.Data()[i] = float32(r.NormFloat64())
	}
	return t
}

// column extracts column j of a [rows, N] tensor as a vector.
func column(t *tensor.Tensor, j int) []float32 {
	rows, n := t.Dim(0), t.Dim(1)
	out := make([]float32, rows)
	for i := range out {
		out[i] = t.Data()[i*n+j]
	}
	return out
}

// TestStepBatchMatchesStep: every column of a batched step must be bit-equal
// to the serial step on that column's vectors, for batch sizes on both sides
// of the GEMM parallel threshold.
func TestStepBatchMatchesStep(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cell := NewLSTMCell("lstm", 6, 9, stats.NewRNG(3))
	for _, batch := range []int{1, 2, 7} {
		xs := make([]*tensor.Tensor, batch)
		hs := make([]*tensor.Tensor, batch)
		cs := make([]*tensor.Tensor, batch)
		x := tensor.MustNew(6, batch)
		h := tensor.MustNew(9, batch)
		c := tensor.MustNew(9, batch)
		for j := 0; j < batch; j++ {
			xs[j], hs[j], cs[j] = randVec(r, 6), randVec(r, 9), randVec(r, 9)
			for i := 0; i < 6; i++ {
				x.Data()[i*batch+j] = xs[j].Data()[i]
			}
			for i := 0; i < 9; i++ {
				h.Data()[i*batch+j] = hs[j].Data()[i]
				c.Data()[i*batch+j] = cs[j].Data()[i]
			}
		}
		hB, cB, err := cell.StepBatch(x, h, c, nil)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < batch; j++ {
			hS, cS, err := cell.Step(xs[j], hs[j], cs[j])
			if err != nil {
				t.Fatal(err)
			}
			gotH, gotC := column(hB, j), column(cB, j)
			for i := 0; i < 9; i++ {
				if math.Float32bits(gotH[i]) != math.Float32bits(hS.Data()[i]) {
					t.Fatalf("batch %d col %d: h[%d] = %v, serial %v", batch, j, i, gotH[i], hS.Data()[i])
				}
				if math.Float32bits(gotC[i]) != math.Float32bits(cS.Data()[i]) {
					t.Fatalf("batch %d col %d: c[%d] = %v, serial %v", batch, j, i, gotC[i], cS.Data()[i])
				}
			}
		}
	}
}

func TestStepBatchShapeErrors(t *testing.T) {
	cell := NewLSTMCell("lstm", 4, 8, stats.NewRNG(1))
	x := tensor.MustNew(4, 3)
	h := tensor.MustNew(8, 3)
	c := tensor.MustNew(8, 3)
	if _, _, err := cell.StepBatch(tensor.MustNew(5, 3), h, c, nil); err == nil {
		t.Error("wrong input rows: expected error")
	}
	if _, _, err := cell.StepBatch(x, tensor.MustNew(8, 2), c, nil); err == nil {
		t.Error("state column mismatch: expected error")
	}
	if _, _, err := cell.StepBatch(x, tensor.MustNew(7, 3), c, nil); err == nil {
		t.Error("state row mismatch: expected error")
	}
}

func TestLookupBatchMatchesLookup(t *testing.T) {
	e := NewEmbedding("emb", 12, 5, stats.NewRNG(2))
	tokens := []int{3, 0, 11, 3}
	out, err := e.LookupBatch(tokens, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != 5 || out.Dim(1) != len(tokens) {
		t.Fatalf("batch lookup shape %v", out.Shape())
	}
	for j, tok := range tokens {
		v, err := e.Lookup(tok)
		if err != nil {
			t.Fatal(err)
		}
		got := column(out, j)
		for i := range got {
			if got[i] != v.Data()[i] {
				t.Fatalf("token %d dim %d: %v vs %v", tok, i, got[i], v.Data()[i])
			}
		}
	}
	if _, err := e.LookupBatch([]int{12}, nil); err == nil {
		t.Error("out-of-vocabulary token: expected error")
	}
	if _, err := e.LookupBatch(nil, nil); err == nil {
		t.Error("empty batch: expected error")
	}
}

// TestTranslateBatchMatchesSerial pins the batched greedy decoder to the
// serial path, bit for bit, across ragged lengths and batch sizes.
func TestTranslateBatchMatchesSerial(t *testing.T) {
	m, err := NewSeq2Seq("gnmt-mini", Seq2SeqConfig{
		SrcVocab: 32, DstVocab: 32, EmbedDim: 8, HiddenSize: 16,
		EncoderLayers: 2, DecoderLayers: 2, MaxLen: 12, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	for _, batch := range []int{1, 2, 5, 9} {
		srcs := make([][]int, batch)
		for i := range srcs {
			srcs[i] = make([]int, 1+r.Intn(10))
			for j := range srcs[i] {
				srcs[i][j] = 2 + r.Intn(30)
			}
		}
		got, err := m.TranslateBatch(srcs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != batch {
			t.Fatalf("batch %d: %d outputs", batch, len(got))
		}
		for i, src := range srcs {
			want, err := m.Translate(src)
			if err != nil {
				t.Fatal(err)
			}
			if len(got[i]) != len(want) {
				t.Fatalf("batch %d sentence %d: %v vs serial %v", batch, i, got[i], want)
			}
			for k := range want {
				if got[i][k] != want[k] {
					t.Fatalf("batch %d sentence %d token %d: %d vs %d", batch, i, k, got[i][k], want[k])
				}
			}
		}
	}
}

func TestTranslateBatchErrors(t *testing.T) {
	m, err := NewSeq2Seq("ok", Seq2SeqConfig{SrcVocab: 16, DstVocab: 16, EmbedDim: 4, HiddenSize: 8, EncoderLayers: 1, DecoderLayers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out, err := m.TranslateBatch(nil, nil); err != nil || out != nil {
		t.Errorf("empty batch: got %v, %v", out, err)
	}
	if _, err := m.TranslateBatch([][]int{{3}, {}}, nil); err == nil {
		t.Error("empty sentence in batch: expected error")
	}
	if _, err := m.TranslateBatch([][]int{{3}, {99}}, nil); err == nil {
		t.Error("out-of-vocabulary source: expected error")
	}
}
