package tensor

import (
	"os"
	"strconv"
	"sync/atomic"
)

// Runtime tuning knobs for the compute engine. Both defaults were calibrated
// on a 1-core container (see ROADMAP); on wider machines the right values
// differ, so they are overridable — per process via the environment at start,
// or programmatically (backend.NativeConfig forwards its tuning fields here).
// Changing a knob never changes results: the kernels' accumulation-order
// contract holds for every threshold and panel size, so tuning is purely a
// scheduling decision. The knobs are stored atomically because kernels read
// them concurrently from the worker pool.
const (
	// defaultParallelFlopThreshold is the approximate multiply-accumulate
	// count below which forking to the worker pool costs more than it saves
	// and kernels stay on the calling goroutine. Roughly half a millisecond
	// of serial work — far above the fork overhead, and high enough that the
	// miniature reference models run single-sample inference entirely inline,
	// keeping their steady-state path allocation-free (the parallel fork
	// allocates a small closure) and leaving cross-sample parallelism to the
	// backend's batch path.
	defaultParallelFlopThreshold = 1 << 20

	// defaultGEMMPanelBytes is the cache budget for one column panel of a
	// GEMM right-hand side (k × panel float32s), sized to a common L2
	// allocation. It also fixes the batched convolution's sample-panel split:
	// as many whole samples as keep one packed im2col panel inside the
	// budget.
	defaultGEMMPanelBytes = 192 << 10
)

// Environment overrides, read once at process start.
const (
	envFlopThreshold = "MLPERF_PARALLEL_FLOP_THRESHOLD"
	envPanelBytes    = "MLPERF_GEMM_PANEL_BYTES"
)

var (
	flopThresholdV atomic.Int64
	panelBytesV    atomic.Int64
)

func init() {
	flopThresholdV.Store(int64(envTuning(envFlopThreshold, defaultParallelFlopThreshold)))
	panelBytesV.Store(int64(envTuning(envPanelBytes, defaultGEMMPanelBytes)))
}

// envTuning parses a positive integer from the named environment variable,
// falling back to def when unset or malformed.
func envTuning(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// ParallelFlopThreshold returns the current parallel-dispatch threshold in
// multiply-accumulate operations.
func ParallelFlopThreshold() int { return int(flopThresholdV.Load()) }

// SetParallelFlopThreshold overrides the parallel-dispatch threshold; values
// <= 0 restore the built-in default. It returns the previous value so callers
// can scope an override.
func SetParallelFlopThreshold(v int) int {
	if v <= 0 {
		v = defaultParallelFlopThreshold
	}
	return int(flopThresholdV.Swap(int64(v)))
}

// GEMMPanelBytes returns the current GEMM column-panel cache budget in bytes.
func GEMMPanelBytes() int { return int(panelBytesV.Load()) }

// SetGEMMPanelBytes overrides the panel cache budget; values <= 0 restore the
// built-in default. It returns the previous value so callers can scope an
// override.
func SetGEMMPanelBytes(v int) int {
	if v <= 0 {
		v = defaultGEMMPanelBytes
	}
	return int(panelBytesV.Swap(int64(v)))
}
