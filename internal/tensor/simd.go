package tensor

import (
	"os"
	"strings"
	"sync/atomic"
)

// SIMD kernel dispatch. The GEMM hot loops (gemm.go) route through
// hand-written amd64 microkernels when the CPU supports them; which kernel
// runs is a process-wide tier selected once at init and overridable at
// runtime. The tiers form a ladder:
//
//	SIMDOff  — the portable pure-Go kernels, on every architecture.
//	SIMDAVX2 — AVX2 vmulps+vaddps microkernels that vectorize ACROSS OUTPUT
//	           COLUMNS with a broadcast A element, so every output element
//	           still accumulates its own dot product in ascending-k order
//	           with one rounding per multiply and one per add — exactly the
//	           scalar kernels' arithmetic, bit for bit. This is the default
//	           tier on capable hardware precisely because it is free of
//	           numerical consequences.
//	SIMDFMA  — vfmadd microkernels (and a k-vectorized multi-accumulator
//	           dot kernel for the matrix-vector path). Fused multiply-add
//	           rounds once per multiply-add pair and the dot kernel
//	           re-associates the reduction, so results are NOT bit-identical
//	           to the scalar oracle — only within a small relative error.
//	           FMA is therefore never selected automatically: it must be
//	           requested explicitly (MLPERF_SIMD=fma), and the test suite
//	           validates it against a tolerance oracle instead of
//	           bit-equality.
//
// The environment override MLPERF_SIMD accepts off, avx2, fma, or auto (the
// default: the highest bit-exact tier the CPU supports, i.e. avx2 or off).
// Requesting a tier the CPU cannot run clamps down to the best supported
// one, so a pinned MLPERF_SIMD=fma deployment degrades gracefully on
// non-FMA hardware instead of crashing. Changing the tier at runtime
// (SetSIMD) is safe while kernels are executing: each kernel invocation
// reads the tier once, atomically.

// SIMDTier identifies one rung of the kernel dispatch ladder.
type SIMDTier int32

// The dispatch tiers, in strictly ascending capability order.
const (
	SIMDOff SIMDTier = iota
	SIMDAVX2
	SIMDFMA
)

// String returns the tier's MLPERF_SIMD spelling.
func (t SIMDTier) String() string {
	switch t {
	case SIMDAVX2:
		return "avx2"
	case SIMDFMA:
		return "fma"
	default:
		return "off"
	}
}

// ParseSIMDTier parses an MLPERF_SIMD value. auto (and the empty string)
// report ok with the automatic default tier; unknown strings report !ok.
func ParseSIMDTier(s string) (tier SIMDTier, ok bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "scalar", "none":
		return SIMDOff, true
	case "avx2":
		return SIMDAVX2, true
	case "fma":
		return SIMDFMA, true
	case "", "auto":
		return defaultSIMDTier(), true
	default:
		return SIMDOff, false
	}
}

// envSIMD selects the dispatch tier at process start.
const envSIMD = "MLPERF_SIMD"

var (
	// simdSupported is the highest tier the CPU (and OS vector state) can
	// run, probed once at init.
	simdSupported SIMDTier
	// simdActive is the tier kernels dispatch on, read atomically per kernel
	// invocation.
	simdActive atomic.Int32
	// calibratedV records whether a Calibration has been applied (pure
	// observability; see calibrate.go).
	calibratedV atomic.Bool
)

func init() {
	simdSupported = detectSIMD()
	tier, ok := ParseSIMDTier(os.Getenv(envSIMD))
	if !ok {
		tier = defaultSIMDTier()
	}
	simdActive.Store(int32(clampSIMD(tier)))
}

// defaultSIMDTier is the automatic selection: the highest BIT-EXACT tier the
// hardware supports. FMA changes rounding, so it is opt-in only.
func defaultSIMDTier() SIMDTier {
	if simdSupported >= SIMDAVX2 {
		return SIMDAVX2
	}
	return SIMDOff
}

// clampSIMD lowers a requested tier to the best one the CPU supports.
func clampSIMD(t SIMDTier) SIMDTier {
	if t > simdSupported {
		return simdSupported
	}
	if t < SIMDOff {
		return SIMDOff
	}
	return t
}

// ActiveSIMD returns the tier the kernels currently dispatch on.
func ActiveSIMD() SIMDTier { return SIMDTier(simdActive.Load()) }

// SupportedSIMD returns the highest tier this CPU can run.
func SupportedSIMD() SIMDTier { return simdSupported }

// SIMDSupported reports whether the CPU can run the given tier.
func SIMDSupported(t SIMDTier) bool { return t <= simdSupported }

// SetSIMD selects the dispatch tier, clamped to what the CPU supports, and
// returns the previously active tier so callers can scope an override.
// Swapping tiers mid-run is safe (kernels read the tier once per invocation)
// and, for off<->avx2, numerically invisible.
func SetSIMD(t SIMDTier) SIMDTier {
	return SIMDTier(simdActive.Swap(int32(clampSIMD(t))))
}

// KernelConfig is the process's active compute-kernel configuration: the
// SIMD dispatch tier and the live tuning-knob values, plus whether a
// measurement-driven Calibration produced them. serve.Snapshot embeds it so
// a fleet's kernel configuration is auditable per replica.
type KernelConfig struct {
	// SIMD is the active dispatch tier ("off", "avx2" or "fma").
	SIMD string `json:"simd"`
	// FlopThreshold is the live parallel-dispatch threshold
	// (ParallelFlopThreshold).
	FlopThreshold int `json:"flop_threshold"`
	// PanelBytes is the live GEMM column-panel cache budget (GEMMPanelBytes).
	PanelBytes int `json:"panel_bytes"`
	// Calibrated is true once a Calibration has been applied in this
	// process; false means the knobs are defaults or manual overrides.
	Calibrated bool `json:"calibrated"`
}

// CurrentKernelConfig snapshots the active kernel configuration.
func CurrentKernelConfig() KernelConfig {
	return KernelConfig{
		SIMD:          ActiveSIMD().String(),
		FlopThreshold: ParallelFlopThreshold(),
		PanelBytes:    GEMMPanelBytes(),
		Calibrated:    calibratedV.Load(),
	}
}
