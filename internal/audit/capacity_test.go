package audit

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/capacity"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// capacityEvidence decorates the baseline evidence with one replica's
// well-formed resize chain: workers 2->4->8, queue 64->128, and live limits
// matching where the chains end.
func capacityEvidence() ServingEvidence {
	ev := evidence()
	at := time.Unix(1000, 0)
	ev.Replicas[0].Resizes = []serve.ResizeEvent{
		{Time: at, Resource: serve.ResourceWorkers, From: 2, To: 4, Reason: "capacity-grow"},
		{Time: at.Add(time.Second), Resource: serve.ResourceQueue, From: 64, To: 128, Reason: "capacity-grow"},
		{Time: at.Add(2 * time.Second), Resource: serve.ResourceWorkers, From: 4, To: 8, Reason: "capacity-grow"},
	}
	ev.Replicas[0].Workers = 8
	ev.Replicas[0].QueueLimit = 128
	return ev
}

// TestCheckServingCapacityReconciled: a contiguous chain whose final values
// match the snapshot's live limits passes, and the finding only appears when
// resizes were recorded.
func TestCheckServingCapacityReconciled(t *testing.T) {
	findings, err := CheckServing(evidence())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Name == "serving-capacity" {
			t.Fatalf("capacity finding emitted with no resize events: %s", f.Detail)
		}
	}

	findings, err = CheckServing(capacityEvidence())
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-capacity"); !f.Pass {
		t.Errorf("well-formed capacity chain failed: %s", f.Detail)
	}
}

// TestCheckServingCapacityDetectsBrokenChain: an event whose From does not
// continue the previous event's To means a resize went unrecorded.
func TestCheckServingCapacityDetectsBrokenChain(t *testing.T) {
	ev := capacityEvidence()
	ev.Replicas[0].Resizes[2].From = 6 // chain ended at 4
	findings, err := CheckServing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-capacity"); f.Pass {
		t.Errorf("broken chain passed: %s", f.Detail)
	}
}

// TestCheckServingCapacityDetectsMalformedEvents: non-positive limits, missing
// timestamps, missing resources and no-op events all fail.
func TestCheckServingCapacityDetectsMalformedEvents(t *testing.T) {
	mutate := []func(*serve.ResizeEvent){
		func(e *serve.ResizeEvent) { e.To = 0 },
		func(e *serve.ResizeEvent) { e.From = -1 },
		func(e *serve.ResizeEvent) { e.Time = time.Time{} },
		func(e *serve.ResizeEvent) { e.Resource = "" },
		func(e *serve.ResizeEvent) { e.To = e.From },
	}
	for i, f := range mutate {
		ev := capacityEvidence()
		f(&ev.Replicas[0].Resizes[0])
		findings, err := CheckServing(ev)
		if err != nil {
			t.Fatal(err)
		}
		if got := findingByName(t, findings, "serving-capacity"); got.Pass {
			t.Errorf("mutation %d passed: %s", i, got.Detail)
		}
	}
}

// TestCheckServingCapacityDetectsMismatchedFinalLimits: the chain's final To
// must be the live limit the snapshot reports — except on merged snapshots,
// where limits are summed and the identity cannot hold.
func TestCheckServingCapacityDetectsMismatchedFinalLimits(t *testing.T) {
	ev := capacityEvidence()
	ev.Replicas[0].Workers = 6 // chain ends at 8
	findings, err := CheckServing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-capacity"); f.Pass {
		t.Errorf("mismatched final workers passed: %s", f.Detail)
	}

	ev = capacityEvidence()
	ev.Replicas[0].Workers = 6
	ev.Replicas[0].Merged = 3 // merged snapshot: sum-of-limits, identity waived
	findings, err = CheckServing(ev)
	if err != nil {
		t.Fatal(err)
	}
	if f := findingByName(t, findings, "serving-capacity"); !f.Pass {
		t.Errorf("merged snapshot held to the single-host identity: %s", f.Detail)
	}
}

// TestCapacityConformanceLoopback is the acceptance run for dynamic capacity
// management: a Server-scenario run whose offered QPS doubles mid-run against
// a managed loopback deployment must stay valid, with the manager's resize
// events recorded by the server and reconciled by the serving audit, and the
// Prometheus endpoint exposing the same counters.
func TestCapacityConformanceLoopback(t *testing.T) {
	a, err := harness.BuildNative(core.ImageClassificationLight, harness.BuildOptions{
		DatasetSamples: 32, Seed: 7, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := a.ServeLoopback(harness.ServeOptions{
		Server: serve.Config{
			Workers: 4, BatchWait: time.Millisecond, MetricsAddr: "127.0.0.1:0",
		},
		Client: backend.RemoteConfig{MaxInFlight: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// The manager starts the pool conservative (workers 4 -> 1, a recorded
	// decision) and grows it back if the stepped load earns it.
	managers := dep.ManageCapacity(capacity.Config{
		Interval:       10 * time.Millisecond,
		InitialWorkers: 1,
		GrowAfter:      1,
		Cooldown:       20 * time.Millisecond,
		MaxWorkers:     8,
		MaxQueue:       4096,
		Env:            &capacity.Env{CPULimit: 4, GOMAXPROCS: 4, Source: "test"},
	})
	dep.Replica(0).OnScrape(managers[0].WritePrometheus)

	settings := loadgen.DefaultSettings(loadgen.Server)
	settings.MinQueryCount = 64
	settings.MinDuration = 300 * time.Millisecond
	settings.ServerTargetQPS = 150
	settings.ServerQPSStepAfter = 150 * time.Millisecond
	settings.ServerQPSStepTo = 300 // the offered rate doubles mid-run
	settings.ServerTargetLatency = 250 * time.Millisecond
	res, err := loadgen.StartTest(dep.Remote, a.QSL, settings)
	if err != nil {
		t.Fatal(err)
	}
	dep.Remote.Wait()
	if errs := dep.Remote.Errors(); len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if !res.Valid {
		t.Fatalf("stepped run under capacity management invalid: %v", res.ValidityMessages)
	}

	// Stop the manager before collecting evidence so the snapshot is final.
	for _, m := range managers {
		m.Close()
	}
	snaps := dep.ReplicaMetrics()
	if len(snaps[0].Resizes) == 0 {
		t.Fatal("no resize events recorded — the capacity manager never acted")
	}

	findings, err := CheckServing(ServingEvidence{
		Result:         res,
		Settings:       settings,
		ClientRejected: dep.Remote.Rejected(),
		ClientExpired:  dep.Remote.Expired(),
		Replicas:       snaps,
	})
	if err != nil {
		t.Fatal(err)
	}
	capFinding := findingByName(t, findings, "serving-capacity")
	if !capFinding.Pass {
		t.Errorf("capacity audit failed: %s", capFinding.Detail)
	}
	if !AllPassed(findings) {
		for _, f := range findings {
			t.Logf("%s", f)
		}
		t.Error("managed stepped run failed serving conformance")
	}

	// The scrape endpoint serves both the serving counters and the manager's
	// own capacity families on one response.
	resp, err := http.Get("http://" + dep.Replica(0).MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{
		"mlperf_serve_completed_total",
		"mlperf_serve_resize_events_total",
		"mlperf_capacity_max_workers",
		"mlperf_capacity_resizes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape response missing %s", want)
		}
	}
}
