package backend

import (
	"fmt"
	"sync"
	"time"

	"mlperf/internal/loadgen"
)

// Batching wraps another SUT with a dynamic batcher: incoming queries are
// buffered and forwarded as larger merged queries once either MaxBatch
// samples have accumulated or MaxWait has elapsed since the first buffered
// sample. Dynamic batching is the key optimization separating the server and
// offline scenarios (Section VI-B): it raises throughput at the cost of
// added queueing latency. The inner SUT sees merged multi-sample queries, so
// stacking Batching on a backend.Native turns the merge into real batched
// Predict execution rather than mere queueing.
//
// FlushQueries marks the end of the query series: any query issued after it
// is forwarded to the inner SUT immediately (pass-through) instead of
// re-arming the MaxWait timer with no flush in sight. Reopen re-arms the
// batcher for a new series; loadgen.StartTest calls it automatically at the
// start of every run, so a batcher reused across runs batches in each one.
//
// Concurrency: IssueQuery, FlushQueries, Flush and Reopen are safe to call
// from any number of goroutines — the serve worker pool and multi-connection
// SUT drivers do exactly that. All buffer and timer state is guarded by one
// mutex; batch hand-off transfers ownership of the pending slice under it, so
// a sample is forwarded exactly once no matter how IssueQuery and the two
// flush paths (size trigger, timer) interleave, and responses route back
// through Query.Complete, which tolerates completion from several merged
// batches concurrently. One ordering caveat is inherent: a MaxWait timer that
// fires concurrently with FlushQueries may forward its batch to the inner SUT
// after the inner SUT's own FlushQueries ran; inner SUTs must treat
// IssueQuery-after-flush as valid traffic (ours do — Native never buffers and
// serve-backed SUTs are in pass-through by then).
type Batching struct {
	inner    loadgen.SUT
	maxBatch int
	maxWait  time.Duration

	mu      sync.Mutex
	pending []*pendingSample
	timer   *time.Timer
	nextID  uint64
	// closed is set by FlushQueries: the LoadGen has announced the end of the
	// query series, so buffering for future arrivals would add latency with
	// no batching partner in sight. Late queries are forwarded immediately
	// instead of re-arming the MaxWait timer.
	closed bool
}

// pendingSample ties a buffered sample back to its originating query.
type pendingSample struct {
	query  *loadgen.Query
	sample loadgen.QuerySample
}

// NewBatching validates the configuration and returns the wrapper.
func NewBatching(inner loadgen.SUT, maxBatch int, maxWait time.Duration) (*Batching, error) {
	if inner == nil {
		return nil, fmt.Errorf("backend: batching wrapper needs an inner SUT")
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("backend: MaxBatch must be positive, got %d", maxBatch)
	}
	if maxWait <= 0 {
		return nil, fmt.Errorf("backend: MaxWait must be positive, got %v", maxWait)
	}
	return &Batching{inner: inner, maxBatch: maxBatch, maxWait: maxWait}, nil
}

// Name implements loadgen.SUT.
func (b *Batching) Name() string { return b.inner.Name() + "+dynamic-batching" }

// IssueQuery implements loadgen.SUT. After FlushQueries has announced the
// end of the series, stray queries are forwarded immediately rather than
// buffered against a timer that may be the only thing left to fire.
func (b *Batching) IssueQuery(q *loadgen.Query) {
	b.mu.Lock()
	for i := range q.Samples {
		b.pending = append(b.pending, &pendingSample{query: q, sample: q.Samples[i]})
	}
	shouldFlush := b.closed || len(b.pending) >= b.maxBatch
	if !shouldFlush && b.timer == nil {
		b.timer = time.AfterFunc(b.maxWait, b.flushTimer)
	}
	b.mu.Unlock()
	if shouldFlush {
		b.Flush()
	}
}

// flushTimer is the MaxWait expiry path.
func (b *Batching) flushTimer() {
	b.Flush()
}

// Flush forwards all buffered samples to the inner SUT immediately.
func (b *Batching) Flush() {
	b.mu.Lock()
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	pending := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(pending) == 0 {
		return
	}

	for start := 0; start < len(pending); start += b.maxBatch {
		end := start + b.maxBatch
		if end > len(pending) {
			end = len(pending)
		}
		b.forward(pending[start:end])
	}
}

// forward builds one merged query for the inner SUT and routes its responses
// back to the original queries.
func (b *Batching) forward(batch []*pendingSample) {
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.mu.Unlock()

	merged := &loadgen.Query{ID: id, Samples: make([]loadgen.QuerySample, len(batch))}
	owners := make(map[uint64]*loadgen.Query, len(batch))
	for i, p := range batch {
		merged.Samples[i] = p.sample
		owners[p.sample.ID] = p.query
	}
	merged.Issued = time.Now()
	proxy := &batchProxy{inner: b.inner, merged: merged, owners: owners}
	proxy.run()
}

// batchProxy issues the merged query and demultiplexes responses.
type batchProxy struct {
	inner  loadgen.SUT
	merged *loadgen.Query
	owners map[uint64]*loadgen.Query
}

func (p *batchProxy) run() {
	p.merged.SetCompletionHandler(func(_ *loadgen.Query, responses []loadgen.Response) {
		// Route each response to the query that originally carried the sample.
		byOwner := make(map[*loadgen.Query][]loadgen.Response)
		for _, r := range responses {
			owner := p.owners[r.SampleID]
			if owner == nil {
				continue
			}
			byOwner[owner] = append(byOwner[owner], r)
		}
		for owner, rs := range byOwner {
			owner.Complete(rs)
		}
	})
	p.inner.IssueQuery(p.merged)
}

// FlushQueries implements loadgen.SUT: buffered samples are forwarded, the
// inner SUT is flushed, and the batcher switches to pass-through mode so any
// late query is forwarded immediately instead of silently re-arming the
// MaxWait timer after the LoadGen has stopped issuing.
func (b *Batching) FlushQueries() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.Flush()
	b.inner.FlushQueries()
}

// Reopen re-arms the batcher for a new query series after FlushQueries has
// switched it to pass-through mode. The LoadGen calls it at the start of
// every test; only SUT-side drivers that bypass loadgen.StartTest need to
// call it themselves.
func (b *Batching) Reopen() {
	b.mu.Lock()
	b.closed = false
	b.mu.Unlock()
}
