package chaos

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// sinkConn is a net.Conn stub that records writes; reads never return.
type sinkConn struct {
	net.Conn // panics if an unimplemented method is called
	buf      bytes.Buffer
	closed   bool
}

func (s *sinkConn) Write(p []byte) (int, error) { return s.buf.Write(p) }
func (s *sinkConn) Close() error                { s.closed = true; return nil }

// faultTrace runs an identical write workload through a fresh injector and
// returns which writes faulted, as an error/no-error bitmap.
func faultTrace(t *testing.T, cfg Config, writes, conns int) []bool {
	t.Helper()
	in := New(cfg)
	var wrapped []net.Conn
	for i := 0; i < conns; i++ {
		wrapped = append(wrapped, in.Conn(&sinkConn{}))
	}
	payload := bytes.Repeat([]byte{0xab}, 64)
	var trace []bool
	for i := 0; i < writes; i++ {
		_, err := wrapped[i%conns].Write(payload)
		trace = append(trace, err != nil)
	}
	return trace
}

// TestDeterministicSchedule pins the harness's core property: the same seed
// and the same workload produce the same fault sequence, while a different
// seed produces a different one.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, SeverRate: 0.05, TruncateRate: 0.05, CorruptRate: 0.05}
	a := faultTrace(t, cfg, 400, 3)
	b := faultTrace(t, cfg, 400, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("write %d: fault schedules diverge for identical seeds", i)
		}
	}
	faults := 0
	for _, f := range a {
		if f {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults fired at 15% combined rate over 400 writes")
	}
	cfg.Seed = 43
	c := faultTrace(t, cfg, 400, 3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical fault schedules")
	}
}

// TestFaultBudget pins MaxFaults: destructive faults stop at the budget and
// traffic flows untouched afterwards.
func TestFaultBudget(t *testing.T) {
	in := New(Config{Seed: 7, SeverRate: 1.0, MaxFaults: 3})
	payload := []byte("frame")
	faulted := 0
	for i := 0; i < 50; i++ {
		c := in.Conn(&sinkConn{})
		if _, err := c.Write(payload); err != nil {
			faulted++
		}
	}
	if faulted != 3 {
		t.Errorf("faulted %d writes, budget was 3", faulted)
	}
	if in.Faults() != 3 {
		t.Errorf("Faults() = %d, want 3", in.Faults())
	}
}

// TestSeveredConnStaysDown pins that a severed connection fails every later
// write instead of resurrecting.
func TestSeveredConnStaysDown(t *testing.T) {
	in := New(Config{Seed: 1, SeverRate: 1.0})
	sink := &sinkConn{}
	c := in.Conn(sink)
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("sever at rate 1.0 did not fault the first write")
	}
	if !sink.closed {
		t.Error("sever did not close the underlying connection")
	}
	if _, err := c.Write([]byte("y")); err == nil {
		t.Error("write after sever succeeded")
	}
}

// TestTruncateWritesPrefix pins that a truncation delivers a strict,
// non-empty prefix and closes the connection.
func TestTruncateWritesPrefix(t *testing.T) {
	in := New(Config{Seed: 5, TruncateRate: 1.0})
	sink := &sinkConn{}
	c := in.Conn(sink)
	payload := bytes.Repeat([]byte{1}, 128)
	if _, err := c.Write(payload); err == nil {
		t.Fatal("truncate at rate 1.0 did not fault the write")
	}
	if got := sink.buf.Len(); got == 0 || got >= len(payload) {
		t.Errorf("truncation delivered %d of %d bytes; want a strict, non-empty prefix", got, len(payload))
	}
	if !sink.closed {
		t.Error("truncate did not close the underlying connection")
	}
}

// TestCorruptFlipsOneByte pins that a corruption delivers the full length
// with exactly one byte changed.
func TestCorruptFlipsOneByte(t *testing.T) {
	in := New(Config{Seed: 9, CorruptRate: 1.0})
	sink := &sinkConn{}
	c := in.Conn(sink)
	payload := bytes.Repeat([]byte{0x55}, 64)
	c.Write(payload)
	got := sink.buf.Bytes()
	if len(got) != len(payload) {
		t.Fatalf("corruption delivered %d of %d bytes", len(got), len(payload))
	}
	diffs := 0
	for i := range got {
		if got[i] != payload[i] {
			diffs++
		}
	}
	if diffs != 1 {
		t.Errorf("corruption changed %d bytes, want exactly 1", diffs)
	}
}

// TestPartialWriteDeliversEverything pins that the survivable fault really is
// survivable: all bytes arrive, in order, despite the split.
func TestPartialWriteDeliversEverything(t *testing.T) {
	in := New(Config{Seed: 3, PartialWriteRate: 1.0, PartialDelay: time.Microsecond})
	sink := &sinkConn{}
	c := in.Conn(sink)
	payload := []byte("0123456789abcdef")
	n, err := c.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("partial write: n=%d err=%v", n, err)
	}
	if !bytes.Equal(sink.buf.Bytes(), payload) {
		t.Errorf("partial write reordered or lost bytes: %q", sink.buf.Bytes())
	}
}

// TestListenerWrapsAccepted pins the WrapListener integration shape: Addr
// passes through and accepted connections carry the fault schedule.
func TestListenerWrapsAccepted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 2, SeverRate: 1.0})
	wrapped := in.Listener(ln)
	defer wrapped.Close()
	if wrapped.Addr().String() != ln.Addr().String() {
		t.Errorf("wrapped Addr %s != %s", wrapped.Addr(), ln.Addr())
	}
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err == nil {
			defer c.Close()
			buf := make([]byte, 16)
			c.Read(buf)
		}
	}()
	c, err := wrapped.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err == nil {
		t.Error("accepted connection did not carry the fault schedule")
	}
}

// TestDialerWraps pins the RemoteConfig.Dialer integration shape.
func TestDialerWraps(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err == nil {
			defer c.Close()
			buf := make([]byte, 16)
			c.Read(buf)
		}
	}()
	in := New(Config{Seed: 4, SeverRate: 1.0})
	dial := in.Dialer(nil)
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err == nil {
		t.Error("dialed connection did not carry the fault schedule")
	}
}
