package loadgen

import (
	"fmt"
	"time"

	"mlperf/internal/stats"
)

// AccuracyEntry is one logged response, consumed by the accuracy script after
// the run (Figure 3, step 7).
type AccuracyEntry struct {
	QueryID     uint64
	SampleIndex int
	Data        []byte
}

// Result summarises one LoadGen run.
type Result struct {
	Scenario Scenario
	Mode     Mode
	SUTName  string
	QSLName  string

	// Counters.
	QueriesIssued    int
	QueriesCompleted int
	SamplesIssued    int
	SamplesCompleted int
	ResponsesDropped int // samples answered without inference (rejected/expired)
	SkippedIntervals int // multistream: queries that caused >= 1 skipped interval

	// TestDuration is the wall-clock span of the timed portion.
	TestDuration time.Duration

	// QueryLatencies summarises per-query latency.
	QueryLatencies stats.LatencySummary

	// Scenario metrics (only the field for the run's scenario is meaningful).
	SingleStreamLatency    time.Duration // target-percentile latency
	MultiStreamStreams     int           // N streams sustained (0 if constraint violated)
	ServerAchievedQPS      float64       // completed queries per second
	ServerScheduledQPS     float64       // the Poisson parameter under test
	OfflineSamplesPerSec   float64       // offline throughput
	LatencyBoundViolations float64       // fraction of queries over the latency bound

	// Swarm scenario: the simulated session population, how many reconnect
	// (churn) events occurred, and the per-class outcome. The aggregate rate
	// fields ServerScheduledQPS/ServerAchievedQPS are reused (a swarm is the
	// superposition of its sessions' Poisson streams) and
	// LatencyBoundViolations carries the worst class's violation fraction.
	SwarmSessions int
	SwarmChurns   int
	SwarmClasses  []SwarmClassResult

	// Validity.
	Valid              bool
	ValidityMessages   []string
	AccuracyLog        []AccuracyEntry
	PerformanceSamples int // number of distinct loaded samples during the run
}

// SwarmClassResult is one traffic class's outcome in a Swarm run.
type SwarmClassResult struct {
	Name             string
	TargetLatency    time.Duration
	TargetPercentile float64

	QueriesIssued    int
	QueriesCompleted int
	ResponsesDropped int

	// Latencies summarizes the class's per-query latency (measured from the
	// scheduled arrival, like the Server scenario).
	Latencies stats.LatencySummary
	// PercentileLatency is the class's latency at its own target percentile.
	PercentileLatency time.Duration
	// BoundViolations is the fraction of the class's queries over its target.
	BoundViolations float64
	// Valid reports whether the class met its latency bound.
	Valid bool
}

// MetricValue returns the scenario's headline metric as a float for
// table/figure generation: milliseconds for single-stream, streams for
// multistream, QPS for server, samples/s for offline.
func (r *Result) MetricValue() float64 {
	switch r.Scenario {
	case SingleStream:
		return float64(r.SingleStreamLatency) / float64(time.Millisecond)
	case MultiStream:
		return float64(r.MultiStreamStreams)
	case Server, Swarm:
		return r.ServerAchievedQPS
	case Offline:
		return r.OfflineSamplesPerSec
	default:
		return 0
	}
}

// MetricName returns the human-readable headline metric name per Table II.
func (r *Result) MetricName() string {
	switch r.Scenario {
	case SingleStream:
		return fmt.Sprintf("%gth-percentile latency (ms)", 100*0.90)
	case MultiStream:
		return "streams subject to latency bound"
	case Server:
		return "queries per second subject to latency bound"
	case Offline:
		return "samples per second"
	case Swarm:
		return "aggregate queries per second subject to per-class latency bounds"
	default:
		return "unknown"
	}
}

// finalizeValidity applies the benchmark's minimum-query, minimum-duration
// and latency-bound requirements and records human-readable reasons for any
// violation.
func (r *Result) finalizeValidity(ts TestSettings) {
	r.Valid = true
	fail := func(format string, args ...interface{}) {
		r.Valid = false
		r.ValidityMessages = append(r.ValidityMessages, fmt.Sprintf(format, args...))
	}
	if r.QueriesCompleted < r.QueriesIssued {
		fail("only %d of %d issued queries completed", r.QueriesCompleted, r.QueriesIssued)
	}
	if r.ResponsesDropped > 0 {
		fail("SUT dropped %d responses (rejected, expired, or failed without a prediction)", r.ResponsesDropped)
	}
	if ts.Mode == PerformanceMode {
		if r.QueriesIssued < ts.MinQueryCount {
			fail("issued %d queries, benchmark requires at least %d", r.QueriesIssued, ts.MinQueryCount)
		}
		if r.TestDuration < ts.MinDuration {
			fail("test ran for %v, benchmark requires at least %v", r.TestDuration, ts.MinDuration)
		}
	}
	switch ts.Scenario {
	case Server:
		allowed := 1 - ts.ServerLatencyPercentile
		if r.LatencyBoundViolations > allowed+1e-12 {
			fail("%.3f%% of queries exceeded the %v latency bound (allowed %.3f%%)",
				100*r.LatencyBoundViolations, ts.ServerTargetLatency, 100*allowed)
		}
	case MultiStream:
		if r.QueriesIssued > 0 {
			skipFraction := float64(r.SkippedIntervals) / float64(r.QueriesIssued)
			if skipFraction > ts.MultiStreamMaxSkipFraction+1e-12 {
				fail("%.3f%% of queries produced skipped intervals (allowed %.3f%%)",
					100*skipFraction, 100*ts.MultiStreamMaxSkipFraction)
			}
		}
	case Offline:
		if ts.Mode == PerformanceMode && r.SamplesIssued < ts.MinSampleCount {
			fail("offline query contained %d samples, benchmark requires at least %d", r.SamplesIssued, ts.MinSampleCount)
		}
	case Swarm:
		for i := range r.SwarmClasses {
			c := &r.SwarmClasses[i]
			c.Valid = true
			allowed := 1 - c.TargetPercentile
			if c.BoundViolations > allowed+1e-12 {
				c.Valid = false
				fail("class %q: %.3f%% of queries exceeded the %v latency bound (allowed %.3f%%)",
					c.Name, 100*c.BoundViolations, c.TargetLatency, 100*allowed)
			}
		}
	}
}
