package loadgen

import (
	"fmt"
	"sync"
	"time"

	"mlperf/internal/stats"
)

// StartTest runs one benchmark scenario against the SUT and returns the
// result. It mirrors the C++ LoadGen's StartTest entry point: it loads the
// sample working set (untimed), generates query traffic according to the
// scenario, collects responses, and reports statistics and validity.
func StartTest(sut SUT, qsl QuerySampleLibrary, settings TestSettings) (*Result, error) {
	if sut == nil {
		return nil, ErrNilSUT
	}
	if qsl == nil {
		return nil, ErrNilQSL
	}
	if err := settings.Validate(); err != nil {
		return nil, err
	}
	if qsl.TotalSampleCount() <= 0 {
		return nil, fmt.Errorf("loadgen: QSL %q reports no samples", qsl.Name())
	}

	run := &activeRun{
		sut:      sut,
		qsl:      qsl,
		settings: settings,
		queryRNG: stats.NewRNG(settings.QuerySeed),
		accRNG:   stats.NewRNG(settings.AccuracyLogSeed),
	}

	// A new test is a new query series: SUTs that latch state at
	// FlushQueries (e.g. backend.Batching's pass-through mode) re-arm here,
	// so reusing one SUT across runs keeps its configured behavior.
	if r, ok := sut.(interface{ Reopen() }); ok {
		r.Reopen()
	}

	// Untimed: decide the working set and ask the SUT to load it.
	if err := run.loadWorkingSet(); err != nil {
		return nil, err
	}
	defer func() {
		// Unloading failures after a completed run do not invalidate results,
		// but they are surfaced in the validity messages.
		if err := qsl.UnloadSamplesFromRAM(run.loadedSet); err != nil {
			run.result.ValidityMessages = append(run.result.ValidityMessages,
				fmt.Sprintf("unload after run failed: %v", err))
		}
	}()

	run.result = &Result{
		Scenario:           settings.Scenario,
		Mode:               settings.Mode,
		SUTName:            sut.Name(),
		QSLName:            qsl.Name(),
		PerformanceSamples: len(run.loadedSet),
	}
	if settings.MinQueryCount > 0 {
		// Most performance runs complete close to MinQueryCount queries;
		// sizing the latency log up front avoids repeated append growth under
		// the completion lock.
		run.queryLatencies = make([]time.Duration, 0, settings.MinQueryCount)
	}

	var err error
	switch settings.Scenario {
	case SingleStream:
		err = run.runSingleStream()
	case Server:
		err = run.runServer()
	case MultiStream:
		err = run.runMultiStream()
	case Offline:
		err = run.runOffline()
	case Swarm:
		err = run.runSwarm()
	default:
		err = fmt.Errorf("loadgen: unsupported scenario %v", settings.Scenario)
	}
	if err != nil {
		return nil, err
	}

	run.finalize()
	return run.result, nil
}

// activeRun carries the mutable state of one StartTest invocation.
type activeRun struct {
	sut      SUT
	qsl      QuerySampleLibrary
	settings TestSettings

	queryRNG *stats.RNG
	accRNG   *stats.RNG

	loadedSet []int
	sweepPos  int

	start time.Time

	mu               sync.Mutex
	queryLatencies   []time.Duration
	queriesIssued    int
	queriesCompleted int
	samplesIssued    int
	samplesCompleted int
	responsesDropped int
	skippedQueries   int
	accuracyLog      []AccuracyEntry
	lastCompletion   time.Time
	issueLoopEnd     time.Time

	// Swarm per-class bookkeeping, indexed by class position in the
	// settings' effective class list; all guarded by mu.
	classIssued    []int
	classCompleted []int
	classDropped   []int
	classLatencies [][]time.Duration
	swarmChurns    int

	// issueMu serializes the query-construction state (ID counters and the
	// shared sample selector) for scenarios that issue from many goroutines;
	// the single-goroutine scenarios never contend on it.
	issueMu sync.Mutex

	pending sync.WaitGroup

	nextQueryID  uint64
	nextSampleID uint64

	result *Result
}

// loadWorkingSet chooses and loads the sample indices for the run.
func (r *activeRun) loadWorkingSet() error {
	total := r.qsl.TotalSampleCount()
	count := total
	if r.settings.Mode == PerformanceMode {
		perf := r.qsl.PerformanceSampleCount()
		if perf > 0 && perf < count {
			count = perf
		}
	}
	set := make([]int, count)
	for i := range set {
		set[i] = i
	}
	if err := r.qsl.LoadSamplesToRAM(set); err != nil {
		return fmt.Errorf("loadgen: loading %d samples: %w", len(set), err)
	}
	r.loadedSet = set
	return nil
}

// nextIndices returns n sample indices according to the configured policy.
func (r *activeRun) nextIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		switch r.settings.SampleIndexPolicy {
		case UniqueSweep:
			out[i] = r.loadedSet[r.sweepPos%len(r.loadedSet)]
			r.sweepPos++
		case DuplicateSingle:
			out[i] = r.loadedSet[0]
		default:
			out[i] = r.loadedSet[r.queryRNG.Intn(len(r.loadedSet))]
		}
	}
	return out
}

// newQuery assembles a query for the given sample indices.
func (r *activeRun) newQuery(indices []int, scheduled time.Duration) *Query {
	q := &Query{
		ID:        r.nextQueryID,
		Scheduled: scheduled,
		Samples:   make([]QuerySample, len(indices)),
	}
	r.nextQueryID++
	for i, idx := range indices {
		q.Samples[i] = QuerySample{ID: r.nextSampleID, Index: idx}
		r.nextSampleID++
	}
	return q
}

// issue sends a query to the SUT, wiring its completion callback. done, when
// non-nil, is closed after the query fully completes.
func (r *activeRun) issue(q *Query, done chan<- struct{}) {
	// Single-sample queries (the single-stream and server issue paths) do not
	// need the ID→index map; resolving through q.Samples[0] directly keeps the
	// per-query issue path free of map allocations.
	var sampleIndexByID map[uint64]int
	if len(q.Samples) > 1 {
		sampleIndexByID = make(map[uint64]int, len(q.Samples))
		for _, s := range q.Samples {
			sampleIndexByID[s.ID] = s.Index
		}
	}
	sampleIndex := func(id uint64) int {
		if sampleIndexByID != nil {
			return sampleIndexByID[id]
		}
		return q.Samples[0].Index
	}
	q.complete = func(q *Query, responses []Response) {
		completedAt := time.Now()
		var latency time.Duration
		switch r.settings.Scenario {
		case Server, MultiStream, Swarm:
			// Latency is measured from the scheduled arrival, so falling
			// behind schedule counts against the SUT rather than hiding
			// overload.
			latency = completedAt.Sub(r.start.Add(q.Scheduled))
		default:
			latency = completedAt.Sub(q.Issued)
		}
		r.mu.Lock()
		r.queryLatencies = append(r.queryLatencies, latency)
		r.queriesCompleted++
		r.samplesCompleted += len(responses)
		if q.Class >= 0 && q.Class < len(r.classLatencies) {
			r.classCompleted[q.Class]++
			r.classLatencies[q.Class] = append(r.classLatencies[q.Class], latency)
			for _, resp := range responses {
				if resp.Dropped {
					r.classDropped[q.Class]++
				}
			}
		}
		if completedAt.After(r.lastCompletion) {
			r.lastCompletion = completedAt
		}
		logAll := r.settings.Mode == AccuracyMode
		for _, resp := range responses {
			if resp.Dropped {
				// A shed sample carries no prediction: count it (the run is
				// invalid) and keep it out of the accuracy log, which only
				// scores real inference output.
				r.responsesDropped++
				continue
			}
			if logAll || (r.settings.AccuracyLogSamplingRate > 0 && r.accRNG.Float64() < r.settings.AccuracyLogSamplingRate) {
				entry := AccuracyEntry{
					QueryID:     q.ID,
					SampleIndex: sampleIndex(resp.SampleID),
					Data:        resp.Data,
				}
				if r.settings.AccuracySink != nil {
					// Streaming path: the sink consumes the entry immediately
					// (still under r.mu, so calls are serialized) and nothing
					// is retained — Data is not copied.
					r.settings.AccuracySink(entry)
					continue
				}
				data := make([]byte, len(resp.Data))
				copy(data, resp.Data)
				entry.Data = data
				r.accuracyLog = append(r.accuracyLog, entry)
			}
		}
		r.mu.Unlock()
		r.pending.Done()
		if done != nil {
			close(done)
		}
	}

	r.mu.Lock()
	r.queriesIssued++
	r.samplesIssued += len(q.Samples)
	if q.Class >= 0 && q.Class < len(r.classIssued) {
		r.classIssued[q.Class]++
	}
	r.mu.Unlock()

	r.pending.Add(1)
	q.Issued = time.Now()
	r.sut.IssueQuery(q)
}

// markIssueLoopEnd records when the traffic-generation loop stopped. The
// timed portion of the run covers at least this point, so a run whose last
// query completed marginally before the generator observed MinDuration being
// satisfied is not spuriously declared too short.
func (r *activeRun) markIssueLoopEnd() {
	r.mu.Lock()
	r.issueLoopEnd = time.Now()
	r.mu.Unlock()
}

// shouldContinue reports whether a performance run needs more queries to meet
// the minimum query count and duration, respecting MaxQueryCount.
func (r *activeRun) shouldContinue(issued int, elapsed time.Duration) bool {
	if r.settings.MaxQueryCount > 0 && issued >= r.settings.MaxQueryCount {
		return false
	}
	if issued < r.settings.MinQueryCount {
		return true
	}
	return elapsed < r.settings.MinDuration
}

// accuracyIndices returns the full list of sample indices an accuracy run
// must cover (the entire data set).
func (r *activeRun) accuracyIndices() []int {
	total := r.qsl.TotalSampleCount()
	out := make([]int, total)
	for i := range out {
		out[i] = i
	}
	return out
}

// runSingleStream issues one single-sample query at a time, waiting for each
// completion before injecting the next (Figure 4, left).
func (r *activeRun) runSingleStream() error {
	r.start = time.Now()
	if r.settings.Mode == AccuracyMode {
		for _, idx := range r.accuracyIndices() {
			done := make(chan struct{})
			q := r.newQuery([]int{idx}, time.Since(r.start))
			r.issue(q, done)
			<-done
		}
		r.markIssueLoopEnd()
		r.sut.FlushQueries()
		r.pending.Wait()
		return nil
	}
	issued := 0
	for r.shouldContinue(issued, time.Since(r.start)) {
		done := make(chan struct{})
		q := r.newQuery(r.nextIndices(1), time.Since(r.start))
		r.issue(q, done)
		<-done
		issued++
	}
	r.markIssueLoopEnd()
	r.sut.FlushQueries()
	r.pending.Wait()
	return nil
}

// steppedGaps returns the Server scenario's arrival-gap source: Poisson gaps
// at ServerTargetQPS, switching to ServerQPSStepTo once the schedule passes
// ServerQPSStepAfter. One seeded RNG draws both segments, so the full stepped
// schedule is a pure function of ScheduleSeed — though how many of its
// arrivals a run issues still depends on when the wall clock crosses
// MinDuration.
func steppedGaps(s TestSettings) (func(offset time.Duration) (time.Duration, error), error) {
	rng := stats.NewRNG(s.ScheduleSeed)
	process, err := stats.NewPoissonProcess(rng, s.ServerTargetQPS)
	if err != nil {
		return nil, err
	}
	stepAt := s.ServerQPSStepAfter
	return func(offset time.Duration) (time.Duration, error) {
		if stepAt > 0 && offset >= stepAt {
			stepped, err := stats.NewPoissonProcess(rng, s.ServerQPSStepTo)
			if err != nil {
				return 0, err
			}
			process = stepped
			stepAt = 0
		}
		return process.NextGap(), nil
	}, nil
}

// runServer issues single-sample queries at Poisson arrival times
// (Figure 4, third panel). With ServerQPSStepAfter set, the arrival rate
// steps to ServerQPSStepTo once the schedule passes that offset.
func (r *activeRun) runServer() error {
	nextGap, err := steppedGaps(r.settings)
	if err != nil {
		return err
	}
	r.start = time.Now()
	if r.settings.Mode == AccuracyMode {
		var offset time.Duration
		for _, idx := range r.accuracyIndices() {
			gap, err := nextGap(offset)
			if err != nil {
				return err
			}
			offset += gap
			r.waitUntil(offset)
			q := r.newQuery([]int{idx}, offset)
			r.issue(q, nil)
		}
		r.markIssueLoopEnd()
		r.sut.FlushQueries()
		r.pending.Wait()
		return nil
	}
	issued := 0
	var offset time.Duration
	for r.shouldContinue(issued, time.Since(r.start)) {
		gap, err := nextGap(offset)
		if err != nil {
			return err
		}
		offset += gap
		r.waitUntil(offset)
		q := r.newQuery(r.nextIndices(1), offset)
		r.issue(q, nil)
		issued++
	}
	r.markIssueLoopEnd()
	r.sut.FlushQueries()
	r.pending.Wait()
	return nil
}

// runMultiStream issues N-sample queries at a fixed arrival interval,
// skipping intervals while the previous query is still in flight
// (Figure 4, second panel).
func (r *activeRun) runMultiStream() error {
	interval := r.settings.MultiStreamArrivalInterval
	n := r.settings.MultiStreamSamplesPerQuery
	r.start = time.Now()

	indicesFor := func() []int { return r.nextIndices(n) }
	var accuracyQueue [][]int
	if r.settings.Mode == AccuracyMode {
		all := r.accuracyIndices()
		for i := 0; i < len(all); i += n {
			end := i + n
			if end > len(all) {
				end = len(all)
			}
			accuracyQueue = append(accuracyQueue, all[i:end])
		}
	}

	issued := 0
	tick := 0
	var inflight chan struct{}
	inflightSkipped := false
	for {
		elapsed := time.Since(r.start)
		if r.settings.Mode == AccuracyMode {
			if len(accuracyQueue) == 0 {
				break
			}
		} else if !r.shouldContinue(issued, elapsed) {
			break
		}
		tick++
		scheduled := time.Duration(tick) * interval
		r.waitUntil(scheduled)

		if inflight != nil {
			select {
			case <-inflight:
				inflight = nil
			default:
				// Previous query still processing: skip this interval and
				// remember that the in-flight query produced a skipped
				// interval.
				if !inflightSkipped {
					inflightSkipped = true
					r.mu.Lock()
					r.skippedQueries++
					r.mu.Unlock()
				}
				continue
			}
		}

		var indices []int
		if r.settings.Mode == AccuracyMode {
			indices = accuracyQueue[0]
			accuracyQueue = accuracyQueue[1:]
		} else {
			indices = indicesFor()
		}
		done := make(chan struct{})
		q := r.newQuery(indices, scheduled)
		r.issue(q, done)
		inflight = done
		inflightSkipped = false
		issued++
	}
	r.markIssueLoopEnd()
	r.sut.FlushQueries()
	r.pending.Wait()
	return nil
}

// runOffline issues a single query containing every required sample
// (Figure 4, right).
func (r *activeRun) runOffline() error {
	count := r.settings.MinSampleCount
	if r.settings.OfflineExpectedQPS > 0 {
		needed := int(r.settings.OfflineExpectedQPS * r.settings.MinDuration.Seconds())
		if needed > count {
			count = needed
		}
	}
	var indices []int
	if r.settings.Mode == AccuracyMode {
		indices = r.accuracyIndices()
	} else {
		if count <= 0 {
			count = len(r.loadedSet)
		}
		indices = r.nextIndices(count)
	}
	r.start = time.Now()
	done := make(chan struct{})
	q := r.newQuery(indices, 0)
	r.issue(q, done)
	r.markIssueLoopEnd()
	r.sut.FlushQueries()
	<-done
	r.pending.Wait()
	return nil
}

// waitUntil sleeps until the given offset from the run start has passed.
func (r *activeRun) waitUntil(offset time.Duration) {
	remaining := time.Until(r.start.Add(offset))
	if remaining > 0 {
		time.Sleep(remaining)
	}
}

// finalize computes the result summary and validity.
func (r *activeRun) finalize() {
	r.mu.Lock()
	defer r.mu.Unlock()

	res := r.result
	res.QueriesIssued = r.queriesIssued
	res.QueriesCompleted = r.queriesCompleted
	res.SamplesIssued = r.samplesIssued
	res.SamplesCompleted = r.samplesCompleted
	res.ResponsesDropped = r.responsesDropped
	res.SkippedIntervals = r.skippedQueries
	res.AccuracyLog = r.accuracyLog

	end := r.lastCompletion
	if r.issueLoopEnd.After(end) {
		end = r.issueLoopEnd
	}
	if end.IsZero() {
		end = time.Now()
	}
	res.TestDuration = end.Sub(r.start)
	if res.TestDuration <= 0 {
		res.TestDuration = time.Nanosecond
	}

	if len(r.queryLatencies) > 0 {
		if summary, err := stats.Summarize(r.queryLatencies); err == nil {
			res.QueryLatencies = summary
		}
	}

	switch r.settings.Scenario {
	case SingleStream:
		if p, err := stats.Percentile(r.queryLatencies, r.settings.SingleStreamTargetPercentile); err == nil {
			res.SingleStreamLatency = p
		}
	case Server:
		res.ServerScheduledQPS = r.settings.ServerTargetQPS
		res.ServerAchievedQPS = float64(r.queriesCompleted) / res.TestDuration.Seconds()
		res.LatencyBoundViolations = stats.FractionOver(r.queryLatencies, r.settings.ServerTargetLatency)
	case MultiStream:
		res.LatencyBoundViolations = stats.FractionOver(r.queryLatencies, r.settings.MultiStreamArrivalInterval)
		res.MultiStreamStreams = r.settings.MultiStreamSamplesPerQuery
	case Offline:
		res.OfflineSamplesPerSec = float64(r.samplesCompleted) / res.TestDuration.Seconds()
	case Swarm:
		res.ServerScheduledQPS = float64(r.settings.SwarmSessions) * r.settings.SwarmSessionQPS
		res.ServerAchievedQPS = float64(r.queriesCompleted) / res.TestDuration.Seconds()
		res.SwarmSessions = r.settings.SwarmSessions
		res.SwarmChurns = r.swarmChurns
		for i, c := range r.settings.swarmClasses() {
			cr := SwarmClassResult{
				Name:             c.Name,
				TargetLatency:    c.TargetLatency,
				TargetPercentile: c.TargetPercentile,
				QueriesIssued:    r.classIssued[i],
				QueriesCompleted: r.classCompleted[i],
				ResponsesDropped: r.classDropped[i],
			}
			lat := r.classLatencies[i]
			if summary, err := stats.Summarize(lat); err == nil {
				cr.Latencies = summary
			}
			if p, err := stats.Percentile(lat, c.TargetPercentile); err == nil {
				cr.PercentileLatency = p
			}
			cr.BoundViolations = stats.FractionOver(lat, c.TargetLatency)
			if cr.BoundViolations > res.LatencyBoundViolations {
				// The headline violation figure is the worst class's: a
				// latency bound must hold for every class, like every shard.
				res.LatencyBoundViolations = cr.BoundViolations
			}
			res.SwarmClasses = append(res.SwarmClasses, cr)
		}
	}

	res.finalizeValidity(r.settings)
	if r.settings.Scenario == MultiStream && !res.Valid {
		res.MultiStreamStreams = 0
	}
}
