// Package multitenant implements the multitenancy extension the paper
// sketches for the LoadGen (Section IV-B): "a multitenancy mode where the SUT
// must continuously serve multiple models while maintaining QoS constraints."
// Several tenants — each a (SUT, QSL, server-scenario settings) triple backed
// by a different model — are driven concurrently so they contend for the same
// machine, and each tenant's run must independently satisfy its latency
// bound.
package multitenant

import (
	"fmt"
	"sync"

	"mlperf/internal/loadgen"
)

// Tenant is one concurrently served model.
type Tenant struct {
	// Name identifies the tenant in the report.
	Name string
	// SUT and QSL are the tenant's system under test and sample library.
	SUT loadgen.SUT
	QSL loadgen.QuerySampleLibrary
	// Settings is the tenant's server-scenario configuration (arrival rate,
	// latency bound, query count). Other scenarios are rejected: multitenancy
	// is defined for online serving.
	Settings loadgen.TestSettings
}

// validate reports configuration errors for one tenant.
func (t Tenant) validate() error {
	if t.Name == "" {
		return fmt.Errorf("multitenant: tenant needs a name")
	}
	if t.SUT == nil {
		return fmt.Errorf("multitenant: tenant %s: %w", t.Name, loadgen.ErrNilSUT)
	}
	if t.QSL == nil {
		return fmt.Errorf("multitenant: tenant %s: %w", t.Name, loadgen.ErrNilQSL)
	}
	if t.Settings.Scenario != loadgen.Server {
		return fmt.Errorf("multitenant: tenant %s: multitenancy requires the server scenario, got %v", t.Name, t.Settings.Scenario)
	}
	return t.Settings.Validate()
}

// TenantResult pairs a tenant with its LoadGen result.
type TenantResult struct {
	Tenant string
	Result *loadgen.Result
	Err    error
}

// Report is the outcome of one multitenant run.
type Report struct {
	Tenants []TenantResult
}

// AllValid reports whether every tenant completed without error and satisfied
// its own validity requirements (including the per-tenant latency bound).
func (r Report) AllValid() bool {
	if len(r.Tenants) == 0 {
		return false
	}
	for _, t := range r.Tenants {
		if t.Err != nil || t.Result == nil || !t.Result.Valid {
			return false
		}
	}
	return true
}

// Violations lists human-readable reasons any tenant failed.
func (r Report) Violations() []string {
	var out []string
	for _, t := range r.Tenants {
		switch {
		case t.Err != nil:
			out = append(out, fmt.Sprintf("%s: run error: %v", t.Tenant, t.Err))
		case t.Result == nil:
			out = append(out, fmt.Sprintf("%s: no result", t.Tenant))
		case !t.Result.Valid:
			for _, msg := range t.Result.ValidityMessages {
				out = append(out, fmt.Sprintf("%s: %s", t.Tenant, msg))
			}
		}
	}
	return out
}

// Run drives every tenant's server scenario concurrently and returns the
// per-tenant results. The tenants genuinely overlap in time, so a shared
// backend (or shared host resources) must sustain the combined load for every
// tenant to remain within its QoS constraint.
func Run(tenants []Tenant) (Report, error) {
	if len(tenants) == 0 {
		return Report{}, fmt.Errorf("multitenant: no tenants supplied")
	}
	names := make(map[string]bool, len(tenants))
	for _, t := range tenants {
		if err := t.validate(); err != nil {
			return Report{}, err
		}
		if names[t.Name] {
			return Report{}, fmt.Errorf("multitenant: duplicate tenant name %q", t.Name)
		}
		names[t.Name] = true
	}

	results := make([]TenantResult, len(tenants))
	var wg sync.WaitGroup
	for i, t := range tenants {
		i, t := i, t
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := loadgen.StartTest(t.SUT, t.QSL, t.Settings)
			results[i] = TenantResult{Tenant: t.Name, Result: res, Err: err}
		}()
	}
	wg.Wait()
	return Report{Tenants: results}, nil
}
