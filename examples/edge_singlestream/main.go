// Edge single-stream: the smartphone-style use case from the paper's
// single-stream scenario (offline voice transcription, camera effects —
// "responsiveness is critical").
//
// The example measures 90th-percentile latency for both image-classification
// reference models on the native backend, then repeats the measurement on two
// simulated mobile platforms from the catalogue to show how the same
// benchmark definition spans wildly different hardware.
//
//	go run ./examples/edge_singlestream
package main

import (
	"fmt"
	"log"
	"time"

	"mlperf/internal/backend"
	"mlperf/internal/core"
	"mlperf/internal/harness"
	"mlperf/internal/loadgen"
	"mlperf/internal/simhw"
)

func main() {
	fmt.Println("== native reference models (single-stream, scaled down) ==")
	for _, task := range []core.Task{core.ImageClassificationLight, core.ImageClassificationHeavy} {
		assembly, err := harness.BuildNative(task, harness.BuildOptions{DatasetSamples: 96, Seed: 7})
		if err != nil {
			log.Fatalf("building %s: %v", task, err)
		}
		settings := harness.QuickSettings(assembly.Spec, loadgen.SingleStream, 8)
		settings.MinDuration = 200 * time.Millisecond
		report, err := harness.Run(assembly, harness.RunOptions{Scenario: loadgen.SingleStream, Settings: &settings})
		if err != nil {
			log.Fatalf("running %s: %v", task, err)
		}
		fmt.Printf("  %-28s p90 latency %10v over %d queries (valid=%v)\n",
			task, report.Performance.SingleStreamLatency, report.Performance.QueriesCompleted, report.Performance.Valid)
	}

	fmt.Println("\n== simulated mobile platforms (single-stream, wall clock, time-scaled) ==")
	for _, platformName := range []string{"smartphone-dsp-s1", "smartphone-soc-s2"} {
		platform, err := simhw.FindPlatform(platformName)
		if err != nil {
			log.Fatal(err)
		}
		for _, modelName := range []string{"mobilenet-v1", "resnet50-v1.5"} {
			workload := simhw.StandardWorkloads()[modelName]

			// Wall-clock LoadGen run against the simulated SUT (time scaled
			// 20x so the example stays fast while latencies remain well above
			// the scheduler's sleep granularity).
			sut, err := backend.NewSimulated(backend.SimulatedConfig{
				Platform: platform, Workload: workload, TimeScale: 20, Seed: 11,
			})
			if err != nil {
				log.Fatal(err)
			}
			qsl := &staticQSL{total: 1024}
			settings := loadgen.DefaultSettings(loadgen.SingleStream)
			settings.MinQueryCount = 64
			settings.MinDuration = 0
			res, err := loadgen.StartTest(sut, qsl, settings)
			if err != nil {
				log.Fatal(err)
			}
			sut.Wait()

			// Virtual-time simulation of the same platform at full scale.
			p90, err := simhw.SingleStreamP90(platform, workload, 1024, 11)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-20s %-16s wall-clock p90 %10v (20x scaled)   full-scale simulated p90 %10v\n",
				platformName, modelName, res.SingleStreamLatency, p90)
		}
	}
}

// staticQSL is a minimal query sample library for the simulated SUT: samples
// carry no payload because the simulated backend models time, not math.
type staticQSL struct{ total int }

func (q *staticQSL) Name() string                             { return "static" }
func (q *staticQSL) TotalSampleCount() int                    { return q.total }
func (q *staticQSL) PerformanceSampleCount() int              { return q.total }
func (q *staticQSL) LoadSamplesToRAM(indices []int) error     { return nil }
func (q *staticQSL) UnloadSamplesFromRAM(indices []int) error { return nil }
