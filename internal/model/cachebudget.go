package model

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// Micro-batch cache budget detection. The budget is the cache share one
// micro-batch's live activations may occupy (the numerator of the micro-batch
// derivation in engine.go). It used to be a fixed 384 KiB — implicitly tuned
// to a 512 KiB L2 — and now adapts to the machine:
//
//  1. MLPERF_MICROBATCH_CACHE_BYTES, when set to a positive integer, wins
//     outright (deployments and tests pin the budget with it).
//  2. On Linux, the per-core L2 size is probed from
//     /sys/devices/system/cpu/cpu0/cache and the budget is 3/4 of it — the
//     same share 384 KiB is of a 512 KiB L2, leaving the rest of the cache
//     for the weight panels streaming through the batched GEMMs. The result
//     is clamped to [128 KiB, 4 MiB]: below the floor a derived micro-batch
//     of 1 defeats batching, above the ceiling the micro-batch cap dominates
//     anyway and a huge shared-L2 reading would not make residency real.
//  3. Anywhere else the previous 384 KiB default applies.
//
// The budget only sizes micro-batches; results are bit-identical under any
// grouping (see the Engine contract), so differing budgets across machines
// never change outputs, only throughput.
const (
	microBatchCacheBudgetEnv     = "MLPERF_MICROBATCH_CACHE_BYTES"
	defaultMicroBatchCacheBudget = 384 << 10
	minMicroBatchCacheBudget     = 128 << 10
	maxMicroBatchCacheBudget     = 4 << 20
)

var (
	cacheBudgetOnce  sync.Once
	cacheBudgetBytes int
)

// microBatchCacheBudget returns the process-wide activation cache budget,
// resolving it on first use (env override, then sysfs probe, then default).
func microBatchCacheBudget() int {
	cacheBudgetOnce.Do(func() {
		cacheBudgetBytes = detectCacheBudget("/sys/devices/system/cpu/cpu0/cache")
	})
	return cacheBudgetBytes
}

// detectCacheBudget resolves the budget from the environment, the given sysfs
// cache directory, or the built-in default, in that order.
func detectCacheBudget(sysfsCacheDir string) int {
	if v := os.Getenv(microBatchCacheBudgetEnv); v != "" {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n > 0 {
			return n
		}
	}
	if l2 := probeL2Bytes(sysfsCacheDir); l2 > 0 {
		budget := l2 * 3 / 4
		if budget < minMicroBatchCacheBudget {
			budget = minMicroBatchCacheBudget
		}
		if budget > maxMicroBatchCacheBudget {
			budget = maxMicroBatchCacheBudget
		}
		return budget
	}
	return defaultMicroBatchCacheBudget
}

// probeL2Bytes reads the level-2 data/unified cache size of cpu0 from sysfs.
// It returns 0 when the topology is unreadable (non-Linux, masked sysfs in a
// container, unparsable size), which callers treat as "probe unavailable".
func probeL2Bytes(cacheDir string) int {
	if runtime.GOOS != "linux" {
		return 0
	}
	indexes, err := filepath.Glob(filepath.Join(cacheDir, "index*"))
	if err != nil {
		return 0
	}
	for _, dir := range indexes {
		if readSysfsString(filepath.Join(dir, "level")) != "2" {
			continue
		}
		typ := readSysfsString(filepath.Join(dir, "type"))
		if typ != "Unified" && typ != "Data" {
			continue
		}
		if size := parseCacheSize(readSysfsString(filepath.Join(dir, "size"))); size > 0 {
			return size
		}
	}
	return 0
}

// readSysfsString returns the trimmed contents of a sysfs attribute, or ""
// when unreadable.
func readSysfsString(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(data))
}

// parseCacheSize parses sysfs cache sizes like "48K", "2048K" or "1M" into
// bytes, returning 0 on malformed input.
func parseCacheSize(s string) int {
	if s == "" {
		return 0
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0
	}
	return n * mult
}

// setMicroBatchCacheBudgetForTest pins the budget for tests that assert
// machine-independent micro-batch derivations, returning a restore func.
// Engines capture their micro-batch at construction, so models must be built
// while the pin is in effect.
func setMicroBatchCacheBudgetForTest(bytes int) (restore func()) {
	prev := microBatchCacheBudget() // resolve first so restore is meaningful
	cacheBudgetBytes = bytes
	return func() { cacheBudgetBytes = prev }
}
