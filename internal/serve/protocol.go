package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"mlperf/internal/trace"
)

// Wire protocol. Every message — both directions — is one length-prefixed
// frame:
//
//	[u32 body length (big endian)] [u8 message type] [body ...]
//
// Version 1 (frame types 1–4) addresses a single-engine server. Client →
// server bodies:
//
//	MsgPredict: u64 request id, u32 sample index, i64 absolute deadline
//	            (UnixNano, 0 = none)
//	MsgFlush:   empty — end of the query series; the batcher flushes and
//	            switches to pass-through (backend.Batching semantics)
//	MsgReopen:  empty — re-arm batching for a new series
//	MsgMetrics: u64 request id — ask for a metrics snapshot
//
// Version 2 (frame types 5–8) adds a model id so one listener can host
// several named engines. Each V2 body begins with [u8 model-id length]
// [model-id bytes] and continues with the corresponding V1 body:
//
//	MsgPredictModel: model id, then the MsgPredict body
//	MsgFlushModel:   model id only — flush that model's series ("" = all)
//	MsgReopenModel:  model id only — re-arm that model ("" = all)
//	MsgMetricsModel: u64 request id, then the model id — that model's
//	                 snapshot ("" = the merged snapshot across models)
//
// The two versions interoperate: a V2 server accepts V1 frames and routes
// them to its default model (the single hosted engine, when unambiguous),
// and a client that never sets a model id emits byte-identical V1 frames,
// so a PR 4 client and a PR 4 server each pair with their newer counterpart.
//
// Server → client bodies (shared by both versions; responses are
// demultiplexed by request id, so they carry no model id):
//
//	MsgPredict: u64 request id, u8 status, payload bytes (the sample's
//	            encoded model.Output when status is StatusOK, empty otherwise)
//	MsgMetrics: u64 request id, JSON-encoded Snapshot
//
// The payload bytes are exactly what model.Output.Encode produces, so a
// response relayed by backend.Remote is bit-identical to what backend.Native
// hands the LoadGen for the same sample. Sample *indexes*, not tensors, cross
// the wire: like the reference LoadGen's QSL contract, the data set is loaded
// on the serving side before the timed run, and the network carries queries
// and answers only.
const (
	// MsgPredict requests inference for one sample (and carries its answer).
	MsgPredict byte = 1
	// MsgFlush marks the end of the query series.
	MsgFlush byte = 2
	// MsgReopen re-arms batching for a new series.
	MsgReopen byte = 3
	// MsgMetrics requests a metrics snapshot.
	MsgMetrics byte = 4
	// MsgPredictModel is MsgPredict addressed to a named model (V2).
	MsgPredictModel byte = 5
	// MsgFlushModel is MsgFlush addressed to a named model (V2).
	MsgFlushModel byte = 6
	// MsgReopenModel is MsgReopen addressed to a named model (V2).
	MsgReopenModel byte = 7
	// MsgMetricsModel is MsgMetrics addressed to a named model (V2).
	MsgMetricsModel byte = 8
	// MsgProbe is the V2 health-check frame. Request body: u64 probe id.
	// Response body: the echoed u64 id plus one readiness byte — ProbeReady
	// when the server is admitting work, ProbeDraining once graceful drain
	// has begun (the replica still answers what it admitted, but a router
	// must not readmit it). backend.Remote's recovery supervisor probes a
	// re-dialed replica with this frame before routing traffic to it again.
	MsgProbe byte = 9
	// MsgPredictTraced is the V3 predict frame: a MsgPredictModel that also
	// carries a trace id, used only for head-sampled requests (the other
	// SampleEvery−1 requests stay byte-identical V1/V2 frames).
	//
	// Request body:  u64 trace id, then the MsgPredictModel body
	//                ([u8 model-id length][model-id][20-byte predict body];
	//                an empty model id targets the default model, like V1).
	// Response body: u64 request id, u8 status, u8 span flag, then — when
	//                the flag is SpanBlockPresent — a 48-byte server span
	//                block (i64 receipt UnixNano and five i64 nanosecond
	//                durations: admit, queue wait, batch assembly, service,
	//                encode), then the payload bytes.
	//
	// Degradation is graceful in both directions: a server without a tracer
	// answers a traced request with a plain MsgPredict response (the client
	// demultiplexes by request id, not frame type, and simply gets no server
	// spans), and an untraced client never emits type 10, so a tracing
	// server speaks pure V1/V2 to it.
	MsgPredictTraced byte = 10
)

// Span-flag values carried in a MsgPredictTraced response.
const (
	// SpanBlockAbsent: the response carries no server span block.
	SpanBlockAbsent byte = 0
	// SpanBlockPresent: a 48-byte server span block follows the flag.
	SpanBlockPresent byte = 1
)

// spanBlockBytes is the encoded size of a server span block: receipt
// timestamp plus five stage durations, eight bytes each.
const spanBlockBytes = 48

// Probe readiness verdicts carried in a MsgProbe response.
const (
	// ProbeDraining: the server is retiring; do not send new work.
	ProbeDraining byte = 0
	// ProbeReady: the server is admitting work.
	ProbeReady byte = 1
)

// Protocol versions. A frame's version is implied by its type: types 1–4 are
// V1, types 5–8 are V2.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	// ProtocolV3 adds the traced predict frame (type 10).
	ProtocolV3 = 3
)

// maxModelIDLen bounds a wire model id (its length is a u8).
const maxModelIDLen = 255

// Status reports how the server disposed of a predict request.
type Status byte

const (
	// StatusOK: inference ran; the payload is the encoded output.
	StatusOK Status = iota
	// StatusRejected: admission control turned the request away (queue full).
	StatusRejected
	// StatusExpired: the request's deadline passed before service began.
	StatusExpired
	// StatusError: the sample failed to load, infer or encode.
	StatusError
)

// String returns the status's wire-log name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRejected:
		return "rejected"
	case StatusExpired:
		return "expired"
	case StatusError:
		return "error"
	default:
		return fmt.Sprintf("status(%d)", byte(s))
	}
}

// maxFrameBytes bounds a single frame so a corrupt length prefix cannot make
// a reader allocate unboundedly. Encoded outputs are small (a class id, a box
// list, a token list); 16 MiB is far above anything legitimate.
const maxFrameBytes = 16 << 20

// PredictRequest is the client-side form of a MsgPredict request frame.
type PredictRequest struct {
	// ID is echoed verbatim in the response so the client can demultiplex
	// concurrent requests on one connection.
	ID uint64
	// SampleIndex addresses the sample in the server's store.
	SampleIndex int
	// Deadline, when non-zero, is the absolute time after which the server
	// must not begin service (it answers StatusExpired instead). Client and
	// server share a clock on a loopback deployment.
	Deadline time.Time
	// Model addresses one of the server's named engines. Empty targets the
	// server's default model and encodes as a V1 frame, byte-identical to the
	// PR 4 protocol; non-empty encodes as MsgPredictModel (V2).
	Model string
	// TraceID, when non-zero, marks the request head-sampled for tracing
	// and switches the encoding to MsgPredictTraced (V3). Zero — the
	// overwhelmingly common case — leaves the V1/V2 encoding untouched.
	TraceID uint64
}

// PredictResponse is the client-side form of a MsgPredict response frame.
type PredictResponse struct {
	ID     uint64
	Status Status
	// Data is the encoded model.Output for StatusOK, empty otherwise.
	Data []byte
	// Spans holds the server-measured span block from a MsgPredictTraced
	// response, nil for plain responses (and for traced responses whose
	// server recorded no spans).
	Spans *trace.WireSpans
}

// frameHeaderBytes is the size of the [u32 length][u8 type] frame prefix.
const frameHeaderBytes = 5

// writeFrame emits one frame from a separate header and body (two writes).
// The caller serializes concurrent writers. Hot paths build complete frames
// in pooled buffers (beginFrame/endFrame) and hand the writer a single
// contiguous slice instead.
func writeFrame(w io.Writer, msgType byte, body []byte) error {
	var header [frameHeaderBytes]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	header[4] = msgType
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	if len(body) == 0 {
		return nil
	}
	_, err := w.Write(body)
	return err
}

// beginFrame reserves space for a frame header at the end of dst; the body
// is appended after it and endFrame patches the header in. Building frames
// this way — header and body in one buffer, one Write to the socket —
// removes both the per-frame body allocation and the double copy the old
// encoders paid (build body, then prepend the header separately).
func beginFrame(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0)
}

// endFrame patches the header of the frame that starts at offset start in
// buf (start is len(dst) at the matching beginFrame call).
func endFrame(buf []byte, start int, msgType byte) []byte {
	binary.BigEndian.PutUint32(buf[start:start+4], uint32(len(buf)-start-frameHeaderBytes))
	buf[start+4] = msgType
	return buf
}

// readBodyChunk caps the allocation readFrame makes before any body bytes
// have actually arrived, so a lying length prefix on a truncated stream costs
// at most one chunk of memory rather than the claimed frame size.
const readBodyChunk = 64 << 10

// readFrame reads one frame, returning its type and body. Bodies up to
// readBodyChunk — every frame on the predict/response hot path — are read
// with a single allocation, exactly sized. A larger body is sized in full
// only after its first chunk has actually arrived, so the claimed length
// alone never drives the allocation (a lying prefix on a truncated stream
// costs one pooled chunk, not maxFrameBytes).
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var header [5]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(header[:4]))
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	if n <= readBodyChunk {
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return 0, nil, err
		}
		return header[4], body, nil
	}
	// A large frame: prove the peer is actually transmitting before
	// committing the claimed size — read one chunk first (a lying prefix on
	// a truncated stream costs at most this chunk), then size the body to
	// the full n exactly once and fill the remainder directly into it. The
	// old path append-grew from a chunk-sized cap, re-copying a
	// maxFrameBytes body around eight times on the way up.
	probe := AcquireBuffer(readBodyChunk)
	first := probe.B[:readBodyChunk]
	if _, err := io.ReadFull(r, first); err != nil {
		probe.Release()
		return 0, nil, err
	}
	body := make([]byte, n)
	copy(body, first)
	probe.Release()
	if _, err := io.ReadFull(r, body[readBodyChunk:]); err != nil {
		return 0, nil, err
	}
	return header[4], body, nil
}

// readFrameBuf is readFrame on pooled memory: the body lives in a Buffer
// from the size-classed pool, which the caller must Release once every
// sub-slice of it (payload data, metrics JSON) has been consumed. This is
// the steady-state read path on both ends of the wire — it allocates
// nothing once the pools are warm.
func readFrameBuf(r *bufio.Reader) (byte, *Buffer, error) {
	// Peek the header out of the bufio buffer rather than io.ReadFull into a
	// local array: the interface-typed ReadFull call makes a local header
	// escape, which would put one 5-byte heap allocation on every frame read.
	header, err := r.Peek(frameHeaderBytes)
	if err != nil {
		if err == io.EOF && len(header) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(header[:4]))
	msgType := header[4]
	if _, err := r.Discard(frameHeaderBytes); err != nil {
		return 0, nil, err
	}
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("serve: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	if n <= readBodyChunk {
		buf := AcquireBuffer(n)
		buf.B = buf.B[:n]
		if _, err := io.ReadFull(r, buf.B); err != nil {
			buf.Release()
			return 0, nil, err
		}
		return msgType, buf, nil
	}
	// Same lying-prefix discipline as readFrame: one chunk up front, the
	// full pool acquisition only after it arrives.
	probe := AcquireBuffer(readBodyChunk)
	first := probe.B[:readBodyChunk]
	if _, err := io.ReadFull(r, first); err != nil {
		probe.Release()
		return 0, nil, err
	}
	buf := AcquireBuffer(n)
	buf.B = buf.B[:n]
	copy(buf.B, first)
	probe.Release()
	if _, err := io.ReadFull(r, buf.B[readBodyChunk:]); err != nil {
		buf.Release()
		return 0, nil, err
	}
	return msgType, buf, nil
}

// appendModelID appends a model id (u8 length + bytes) to a frame body.
func appendModelID(dst []byte, model string) ([]byte, error) {
	if len(model) > maxModelIDLen {
		return nil, fmt.Errorf("serve: model id %q is %d bytes, limit %d", model, len(model), maxModelIDLen)
	}
	dst = append(dst, byte(len(model)))
	return append(dst, model...), nil
}

// splitModelID pops a model id off the front of a V2 frame body.
func splitModelID(body []byte) (string, []byte, error) {
	if len(body) < 1 {
		return "", nil, fmt.Errorf("serve: body too short for a model id")
	}
	n := int(body[0])
	if len(body) < 1+n {
		return "", nil, fmt.Errorf("serve: model id of %d bytes exceeds the %d-byte body", n, len(body)-1)
	}
	return string(body[1 : 1+n]), body[1+n:], nil
}

// WritePredictRequest encodes and writes one predict request frame: a V1
// MsgPredict when req.Model is empty (byte-identical to the PR 4 wire
// format), a V2 MsgPredictModel otherwise, a V3 MsgPredictTraced when a
// trace id is set. The frame is assembled in a pooled buffer and handed to
// the writer as one contiguous Write — the swarm send path's steady state
// allocates nothing here.
func WritePredictRequest(w io.Writer, req PredictRequest) error {
	buf := AcquireBuffer(frameHeaderBytes + 8 + 1 + len(req.Model) + 20)
	defer buf.Release()
	b := beginFrame(buf.B)
	var msgType byte
	switch {
	case req.TraceID != 0:
		msgType = MsgPredictTraced
		b = binary.BigEndian.AppendUint64(b, req.TraceID)
		var err error
		if b, err = appendModelID(b, req.Model); err != nil {
			return err
		}
	case req.Model == "":
		msgType = MsgPredict
	default:
		msgType = MsgPredictModel
		var err error
		if b, err = appendModelID(b, req.Model); err != nil {
			return err
		}
	}
	b = binary.BigEndian.AppendUint64(b, req.ID)
	b = binary.BigEndian.AppendUint32(b, uint32(req.SampleIndex))
	var deadline int64
	if !req.Deadline.IsZero() {
		deadline = req.Deadline.UnixNano()
	}
	b = binary.BigEndian.AppendUint64(b, uint64(deadline))
	buf.B = endFrame(b, 0, msgType)
	_, err := w.Write(buf.B)
	return err
}

// decodePredictTracedRequest parses a MsgPredictTraced request body into
// the request (Model and TraceID populated).
func decodePredictTracedRequest(body []byte) (PredictRequest, error) {
	if len(body) < 8 {
		return PredictRequest{}, fmt.Errorf("serve: traced predict body is %d bytes, want >= 8", len(body))
	}
	traceID := binary.BigEndian.Uint64(body[0:8])
	if traceID == 0 {
		return PredictRequest{}, fmt.Errorf("serve: traced predict frame carries a zero trace id")
	}
	model, rest, err := splitModelID(body[8:])
	if err != nil {
		return PredictRequest{}, err
	}
	req, err := decodePredictRequest(rest)
	if err != nil {
		return PredictRequest{}, err
	}
	req.Model = model
	req.TraceID = traceID
	return req, nil
}

// decodePredictRequest parses a MsgPredict request body.
func decodePredictRequest(body []byte) (PredictRequest, error) {
	if len(body) != 20 {
		return PredictRequest{}, fmt.Errorf("serve: predict request body is %d bytes, want 20", len(body))
	}
	req := PredictRequest{
		ID:          binary.BigEndian.Uint64(body[0:8]),
		SampleIndex: int(binary.BigEndian.Uint32(body[8:12])),
	}
	if nanos := int64(binary.BigEndian.Uint64(body[12:20])); nanos != 0 {
		req.Deadline = time.Unix(0, nanos)
	}
	return req, nil
}

// encodePredictResponse builds a MsgPredict response body.
func encodePredictResponse(id uint64, status Status, data []byte) []byte {
	body := make([]byte, 9+len(data))
	binary.BigEndian.PutUint64(body[0:8], id)
	body[8] = byte(status)
	copy(body[9:], data)
	return body
}

// encodePredictTracedResponse builds a MsgPredictTraced response body:
// the plain response prefix, a span flag, and — when spans is non-nil —
// the 48-byte server span block ahead of the payload.
func encodePredictTracedResponse(id uint64, status Status, spans *trace.WireSpans, data []byte) []byte {
	size := 10 + len(data)
	if spans != nil {
		size += spanBlockBytes
	}
	body := make([]byte, 0, size)
	body = binary.BigEndian.AppendUint64(body, id)
	body = append(body, byte(status))
	if spans == nil {
		body = append(body, SpanBlockAbsent)
		return append(body, data...)
	}
	body = append(body, SpanBlockPresent)
	for _, v := range [6]int64{spans.RecvUnixNano, spans.Admit, spans.Queue, spans.Assembly, spans.Service, spans.Encode} {
		body = binary.BigEndian.AppendUint64(body, uint64(v))
	}
	return append(body, data...)
}

// appendPredictResponseFrame appends a complete MsgPredict response frame
// (header included) to dst — the single-buffer, single-copy form of
// encodePredictResponse used by the pooled respond path.
func appendPredictResponseFrame(dst []byte, id uint64, status Status, data []byte) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, byte(status))
	dst = append(dst, data...)
	return endFrame(dst, start, MsgPredict)
}

// appendPredictTracedResponseFrame appends a complete MsgPredictTraced
// response frame to dst.
func appendPredictTracedResponseFrame(dst []byte, id uint64, status Status, spans *trace.WireSpans, data []byte) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, byte(status))
	if spans == nil {
		dst = append(dst, SpanBlockAbsent)
	} else {
		dst = append(dst, SpanBlockPresent)
		for _, v := range [6]int64{spans.RecvUnixNano, spans.Admit, spans.Queue, spans.Assembly, spans.Service, spans.Encode} {
			dst = binary.BigEndian.AppendUint64(dst, uint64(v))
		}
	}
	dst = append(dst, data...)
	return endFrame(dst, start, MsgPredictTraced)
}

// appendIDPrefixFrame appends a complete frame whose body is a u64 id plus
// data (metrics responses).
func appendIDPrefixFrame(dst []byte, msgType byte, id uint64, data []byte) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, data...)
	return endFrame(dst, start, msgType)
}

// appendProbeResponseFrame appends a complete MsgProbe response frame.
func appendProbeResponseFrame(dst []byte, id uint64, ready byte) []byte {
	start := len(dst)
	dst = beginFrame(dst)
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, ready)
	return endFrame(dst, start, MsgProbe)
}

// decodePredictTracedResponse parses a MsgPredictTraced response body.
func decodePredictTracedResponse(body []byte) (PredictResponse, error) {
	if len(body) < 10 {
		return PredictResponse{}, fmt.Errorf("serve: traced predict response body is %d bytes, want >= 10", len(body))
	}
	resp := PredictResponse{
		ID:     binary.BigEndian.Uint64(body[0:8]),
		Status: Status(body[8]),
	}
	rest := body[10:]
	switch flag := body[9]; flag {
	case SpanBlockAbsent:
	case SpanBlockPresent:
		if len(rest) < spanBlockBytes {
			return PredictResponse{}, fmt.Errorf("serve: traced response span block is %d bytes, want %d", len(rest), spanBlockBytes)
		}
		var vals [6]int64
		for i := range vals {
			vals[i] = int64(binary.BigEndian.Uint64(rest[8*i : 8*i+8]))
		}
		resp.Spans = &trace.WireSpans{
			RecvUnixNano: vals[0], Admit: vals[1], Queue: vals[2],
			Assembly: vals[3], Service: vals[4], Encode: vals[5],
		}
		rest = rest[spanBlockBytes:]
	default:
		return PredictResponse{}, fmt.Errorf("serve: traced response has unknown span flag %d", flag)
	}
	if len(rest) > 0 {
		resp.Data = rest
	}
	return resp, nil
}

// decodePredictResponse parses a MsgPredict response body.
func decodePredictResponse(body []byte) (PredictResponse, error) {
	if len(body) < 9 {
		return PredictResponse{}, fmt.Errorf("serve: predict response body is %d bytes, want >= 9", len(body))
	}
	resp := PredictResponse{
		ID:     binary.BigEndian.Uint64(body[0:8]),
		Status: Status(body[8]),
	}
	if len(body) > 9 {
		resp.Data = body[9:]
	}
	return resp, nil
}

// WriteControl writes a bodyless control frame (MsgFlush, MsgReopen).
func WriteControl(w io.Writer, msgType byte) error {
	return writeFrame(w, msgType, nil)
}

// WriteControlModel writes a model-addressed control frame. msgType is the V1
// control type (MsgFlush or MsgReopen); an empty model emits the V1 frame
// unchanged, a non-empty one the corresponding V2 frame. On a multi-model
// server, an empty model id applies the control to every hosted model.
func WriteControlModel(w io.Writer, msgType byte, model string) error {
	if model == "" {
		return WriteControl(w, msgType)
	}
	var v2 byte
	switch msgType {
	case MsgFlush:
		v2 = MsgFlushModel
	case MsgReopen:
		v2 = MsgReopenModel
	default:
		return fmt.Errorf("serve: message type %d is not a control frame", msgType)
	}
	body, err := appendModelID(make([]byte, 0, 1+len(model)), model)
	if err != nil {
		return err
	}
	return writeFrame(w, v2, body)
}

// WriteProbeRequest writes a health-probe request frame.
func WriteProbeRequest(w io.Writer, id uint64) error {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], id)
	return writeFrame(w, MsgProbe, body[:])
}

// encodeProbeResponse builds a MsgProbe response body: id + readiness byte.
func encodeProbeResponse(id uint64, ready byte) []byte {
	var body [9]byte
	binary.BigEndian.PutUint64(body[0:8], id)
	body[8] = ready
	return body[:]
}

// decodeProbeResponse parses a MsgProbe response body.
func decodeProbeResponse(body []byte) (id uint64, ready byte, err error) {
	if len(body) != 9 {
		return 0, 0, fmt.Errorf("serve: probe response body is %d bytes, want 9", len(body))
	}
	return binary.BigEndian.Uint64(body[0:8]), body[8], nil
}

// WriteMetricsRequest writes a metrics-snapshot request frame.
func WriteMetricsRequest(w io.Writer, id uint64) error {
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], id)
	return writeFrame(w, MsgMetrics, body[:])
}

// WriteMetricsRequestModel writes a metrics-snapshot request addressed to one
// named model; an empty model emits the V1 frame, which a multi-model server
// answers with its merged snapshot.
func WriteMetricsRequestModel(w io.Writer, id uint64, model string) error {
	if model == "" {
		return WriteMetricsRequest(w, id)
	}
	var fixed [8]byte
	binary.BigEndian.PutUint64(fixed[:], id)
	body, err := appendModelID(append(make([]byte, 0, 8+1+len(model)), fixed[:]...), model)
	if err != nil {
		return err
	}
	return writeFrame(w, MsgMetricsModel, body)
}

// ClientFrame is one server → client message, as read by backend.Remote.
type ClientFrame struct {
	// Type is the frame's message type (MsgPredict, MsgMetrics or MsgProbe).
	Type byte
	// Predict is populated when Type is MsgPredict or MsgPredictTraced.
	Predict PredictResponse
	// MetricsID and MetricsJSON are populated when Type is MsgMetrics.
	MetricsID   uint64
	MetricsJSON []byte
	// ProbeID and ProbeReady are populated when Type is MsgProbe.
	ProbeID    uint64
	ProbeReady bool
	// buf backs Predict.Data and MetricsJSON when the frame was read off
	// the pool; Release returns it.
	buf *Buffer
}

// Release returns the frame's pooled body to the buffer pool. Call it once
// Predict.Data / MetricsJSON have been consumed (they alias the pooled
// memory); a frame that was never pooled releases nothing. Not releasing is
// safe — the buffer is simply garbage collected instead of reused.
func (f *ClientFrame) Release() {
	if f.buf != nil {
		f.buf.Release()
		f.buf = nil
	}
}

// ReadClientFrame reads and decodes one server → client frame into pooled
// memory; call Release on the returned frame when its byte fields are no
// longer needed.
func ReadClientFrame(r *bufio.Reader) (ClientFrame, error) {
	msgType, buf, err := readFrameBuf(r)
	if err != nil {
		return ClientFrame{}, err
	}
	body := buf.B
	frame := ClientFrame{Type: msgType, buf: buf}
	switch msgType {
	case MsgPredict:
		frame.Predict, err = decodePredictResponse(body)
	case MsgPredictTraced:
		frame.Predict, err = decodePredictTracedResponse(body)
	case MsgMetrics:
		frame.MetricsID, frame.MetricsJSON, err = decodeIDPrefix(body)
	case MsgProbe:
		var ready byte
		frame.ProbeID, ready, err = decodeProbeResponse(body)
		frame.ProbeReady = ready == ProbeReady
	default:
		err = fmt.Errorf("serve: unexpected server frame type %d", msgType)
	}
	if err != nil {
		buf.Release()
		return ClientFrame{}, err
	}
	return frame, nil
}

// encodeIDPrefix builds a body of one u64 id followed by data.
func encodeIDPrefix(id uint64, data []byte) []byte {
	body := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(body[0:8], id)
	copy(body[8:], data)
	return body
}

// decodeIDPrefix splits a body into its u64 id and the rest.
func decodeIDPrefix(body []byte) (uint64, []byte, error) {
	if len(body) < 8 {
		return 0, nil, fmt.Errorf("serve: body is %d bytes, want >= 8", len(body))
	}
	return binary.BigEndian.Uint64(body[0:8]), body[8:], nil
}
