package nn

import (
	"fmt"

	"mlperf/internal/stats"
	"mlperf/internal/tensor"
)

// LSTMCell is a single long short-term memory cell. It processes one time
// step of a sequence: given the input vector and the previous hidden and cell
// states, it produces new hidden and cell states.
type LSTMCell struct {
	name       string
	InputSize  int
	HiddenSize int
	// Wx and Wh hold the four gate weight blocks (input, forget, cell, output)
	// stacked along the output dimension: shape (4*hidden) × input and
	// (4*hidden) × hidden respectively.
	Wx   *tensor.Tensor
	Wh   *tensor.Tensor
	Bias *tensor.Tensor // 4*hidden
}

// NewLSTMCell constructs an LSTM cell with deterministic weights from rng.
func NewLSTMCell(name string, inputSize, hiddenSize int, rng *stats.RNG) *LSTMCell {
	wx := tensor.MustNew(4*hiddenSize, inputSize)
	wh := tensor.MustNew(4*hiddenSize, hiddenSize)
	initHe(wx, float64(inputSize), rng)
	initHe(wh, float64(hiddenSize), rng)
	bias := tensor.MustNew(4 * hiddenSize)
	// Standard trick: bias the forget gate positive so early state persists.
	for i := hiddenSize; i < 2*hiddenSize; i++ {
		bias.Data()[i] = 1
	}
	return &LSTMCell{name: name, InputSize: inputSize, HiddenSize: hiddenSize, Wx: wx, Wh: wh, Bias: bias}
}

// Name returns the cell's identifier.
func (c *LSTMCell) Name() string { return c.name }

// ParamCount returns the number of learned parameters.
func (c *LSTMCell) ParamCount() int64 {
	return int64(c.Wx.Len() + c.Wh.Len() + c.Bias.Len())
}

// OpsPerStep returns the multiply-accumulate-equivalent operations per time
// step.
func (c *LSTMCell) OpsPerStep() int64 {
	return 2*int64(c.Wx.Len()) + 2*int64(c.Wh.Len()) + 8*int64(c.HiddenSize)
}

// Step advances the cell by one time step.
func (c *LSTMCell) Step(x, hPrev, cPrev *tensor.Tensor) (h, cState *tensor.Tensor, err error) {
	if x.Rank() != 1 || x.Dim(0) != c.InputSize {
		return nil, nil, fmt.Errorf("lstm %s: input shape %v, want [%d]", c.name, x.Shape(), c.InputSize)
	}
	if hPrev.Rank() != 1 || hPrev.Dim(0) != c.HiddenSize || cPrev.Rank() != 1 || cPrev.Dim(0) != c.HiddenSize {
		return nil, nil, fmt.Errorf("lstm %s: state shapes %v/%v, want [%d]", c.name, hPrev.Shape(), cPrev.Shape(), c.HiddenSize)
	}
	gx, err := tensor.MatVec(c.Wx, x)
	if err != nil {
		return nil, nil, err
	}
	gh, err := tensor.MatVec(c.Wh, hPrev)
	if err != nil {
		return nil, nil, err
	}
	if err := gx.Add(gh); err != nil {
		return nil, nil, err
	}
	if err := gx.Add(c.Bias); err != nil {
		return nil, nil, err
	}
	hs := c.HiddenSize
	gates := gx.Data()
	h = tensor.MustNew(hs)
	cState = tensor.MustNew(hs)
	for i := 0; i < hs; i++ {
		in := sigmoid(gates[i])
		forget := sigmoid(gates[hs+i])
		cell := tanh(gates[2*hs+i])
		out := sigmoid(gates[3*hs+i])
		cNew := forget*cPrev.Data()[i] + in*cell
		cState.Data()[i] = cNew
		h.Data()[i] = out * tanh(cNew)
	}
	return h, cState, nil
}

func sigmoid(v float32) float32 {
	t := tensor.MustNew(1)
	t.Data()[0] = v
	tensor.Sigmoid(t)
	return t.Data()[0]
}

func tanh(v float32) float32 {
	t := tensor.MustNew(1)
	t.Data()[0] = v
	tensor.Tanh(t)
	return t.Data()[0]
}

// Embedding maps token ids to dense vectors.
type Embedding struct {
	name    string
	Vocab   int
	Dim     int
	Weights *tensor.Tensor // vocab × dim
}

// NewEmbedding constructs an embedding table with deterministic weights.
func NewEmbedding(name string, vocab, dim int, rng *stats.RNG) *Embedding {
	w := tensor.MustNew(vocab, dim)
	initHe(w, float64(dim), rng)
	return &Embedding{name: name, Vocab: vocab, Dim: dim, Weights: w}
}

// Lookup returns the embedding vector for the given token id.
func (e *Embedding) Lookup(token int) (*tensor.Tensor, error) {
	if token < 0 || token >= e.Vocab {
		return nil, fmt.Errorf("embedding %s: token %d outside vocabulary of %d", e.name, token, e.Vocab)
	}
	out := tensor.MustNew(e.Dim)
	copy(out.Data(), e.Weights.Data()[token*e.Dim:(token+1)*e.Dim])
	return out, nil
}

// ParamCount returns the number of learned parameters.
func (e *Embedding) ParamCount() int64 { return int64(e.Weights.Len()) }

// Seq2Seq is a GNMT-style recurrent encoder–decoder with dot-product
// attention. It translates a sequence of source-token ids into a sequence of
// target-token ids with greedy decoding.
type Seq2Seq struct {
	name       string
	SrcEmbed   *Embedding
	DstEmbed   *Embedding
	Encoder    []*LSTMCell
	Decoder    []*LSTMCell
	Output     *Dense // hidden -> target vocabulary logits
	HiddenSize int
	BOS, EOS   int
	MaxLen     int
}

// Seq2SeqConfig configures NewSeq2Seq.
type Seq2SeqConfig struct {
	SrcVocab      int
	DstVocab      int
	EmbedDim      int
	HiddenSize    int
	EncoderLayers int
	DecoderLayers int
	MaxLen        int
	Seed          uint64
}

// NewSeq2Seq constructs the encoder–decoder model.
func NewSeq2Seq(name string, cfg Seq2SeqConfig) (*Seq2Seq, error) {
	if cfg.SrcVocab < 4 || cfg.DstVocab < 4 {
		return nil, fmt.Errorf("nn: seq2seq vocabularies must hold at least BOS/EOS plus tokens")
	}
	if cfg.EmbedDim <= 0 || cfg.HiddenSize <= 0 || cfg.EncoderLayers <= 0 || cfg.DecoderLayers <= 0 {
		return nil, fmt.Errorf("nn: seq2seq dimensions must be positive: %+v", cfg)
	}
	if cfg.MaxLen <= 0 {
		cfg.MaxLen = 32
	}
	rng := stats.NewRNG(cfg.Seed)
	m := &Seq2Seq{
		name:       name,
		SrcEmbed:   NewEmbedding(name+"/src_embed", cfg.SrcVocab, cfg.EmbedDim, rng),
		DstEmbed:   NewEmbedding(name+"/dst_embed", cfg.DstVocab, cfg.EmbedDim, rng),
		HiddenSize: cfg.HiddenSize,
		BOS:        0,
		EOS:        1,
		MaxLen:     cfg.MaxLen,
	}
	for i := 0; i < cfg.EncoderLayers; i++ {
		in := cfg.EmbedDim
		if i > 0 {
			in = cfg.HiddenSize
		}
		m.Encoder = append(m.Encoder, NewLSTMCell(fmt.Sprintf("%s/enc%d", name, i), in, cfg.HiddenSize, rng))
	}
	for i := 0; i < cfg.DecoderLayers; i++ {
		in := cfg.EmbedDim + cfg.HiddenSize // embedding concatenated with attention context
		if i > 0 {
			in = cfg.HiddenSize
		}
		m.Decoder = append(m.Decoder, NewLSTMCell(fmt.Sprintf("%s/dec%d", name, i), in, cfg.HiddenSize, rng))
	}
	m.Output = NewDense(name+"/proj", cfg.HiddenSize, cfg.DstVocab, false, rng)
	return m, nil
}

// Name returns the model's identifier.
func (m *Seq2Seq) Name() string { return m.name }

// ParamCount returns the total number of learned parameters.
func (m *Seq2Seq) ParamCount() int64 {
	total := m.SrcEmbed.ParamCount() + m.DstEmbed.ParamCount() + m.Output.ParamCount()
	for _, c := range m.Encoder {
		total += c.ParamCount()
	}
	for _, c := range m.Decoder {
		total += c.ParamCount()
	}
	return total
}

// OpsPerToken estimates multiply-accumulate-equivalent operations per output
// token (encoder amortized over a typical sentence plus decoder and
// attention).
func (m *Seq2Seq) OpsPerToken() int64 {
	var ops int64
	for _, c := range m.Encoder {
		ops += c.OpsPerStep()
	}
	for _, c := range m.Decoder {
		ops += c.OpsPerStep()
	}
	ops += 2 * int64(m.Output.Weights.Len())
	ops += 4 * int64(m.HiddenSize) * int64(m.MaxLen) // attention scores + context
	return ops
}

// Translate runs greedy decoding and returns the produced target tokens
// (excluding BOS/EOS).
func (m *Seq2Seq) Translate(src []int) ([]int, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("nn: %s: empty source sentence", m.name)
	}
	// Encode.
	encStates := make([]*tensor.Tensor, 0, len(src))
	h := make([]*tensor.Tensor, len(m.Encoder))
	c := make([]*tensor.Tensor, len(m.Encoder))
	for i := range m.Encoder {
		h[i] = tensor.MustNew(m.HiddenSize)
		c[i] = tensor.MustNew(m.HiddenSize)
	}
	for _, tok := range src {
		x, err := m.SrcEmbed.Lookup(tok)
		if err != nil {
			return nil, err
		}
		cur := x
		for i, cell := range m.Encoder {
			var err error
			h[i], c[i], err = cell.Step(cur, h[i], c[i])
			if err != nil {
				return nil, err
			}
			cur = h[i]
		}
		encStates = append(encStates, cur)
	}

	// Decode greedily with dot-product attention over encoder states.
	dh := make([]*tensor.Tensor, len(m.Decoder))
	dc := make([]*tensor.Tensor, len(m.Decoder))
	for i := range m.Decoder {
		dh[i] = h[len(h)-1].Clone()
		dc[i] = c[len(c)-1].Clone()
	}
	out := make([]int, 0, m.MaxLen)
	prev := m.BOS
	for step := 0; step < m.MaxLen; step++ {
		emb, err := m.DstEmbed.Lookup(prev)
		if err != nil {
			return nil, err
		}
		context, err := m.attend(dh[len(dh)-1], encStates)
		if err != nil {
			return nil, err
		}
		cur, err := tensor.Concat(emb, context)
		if err != nil {
			return nil, err
		}
		for i, cell := range m.Decoder {
			dh[i], dc[i], err = cell.Step(cur, dh[i], dc[i])
			if err != nil {
				return nil, err
			}
			cur = dh[i]
		}
		logits, err := m.Output.Forward(cur)
		if err != nil {
			return nil, err
		}
		next := logits.ArgMax()
		if next == m.EOS {
			break
		}
		out = append(out, next)
		prev = next
	}
	return out, nil
}

// attend computes a dot-product attention context vector over the encoder
// states for the given decoder hidden state.
func (m *Seq2Seq) attend(query *tensor.Tensor, encStates []*tensor.Tensor) (*tensor.Tensor, error) {
	scores := tensor.MustNew(len(encStates))
	for i, s := range encStates {
		var dot float32
		for j := 0; j < m.HiddenSize; j++ {
			dot += query.Data()[j] * s.Data()[j]
		}
		scores.Data()[i] = dot
	}
	weights, err := tensor.Softmax(scores)
	if err != nil {
		return nil, err
	}
	context := tensor.MustNew(m.HiddenSize)
	for i, s := range encStates {
		w := weights.Data()[i]
		for j := 0; j < m.HiddenSize; j++ {
			context.Data()[j] += w * s.Data()[j]
		}
	}
	return context, nil
}
