package audit

import (
	"fmt"

	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
)

// ServingEvidence bundles one remote (possibly sharded) run with the
// serving-side counters needed to verify the paper's run rules across a
// network boundary. The replica snapshots must be deltas covering exactly the
// audited run (a fresh deployment per audited run is the simple way to get
// them), and the client counters must come from the Remote that drove it.
type ServingEvidence struct {
	// Result is the LoadGen's view of the run.
	Result *loadgen.Result
	// Settings is the configuration the run used (latency bound, percentile).
	Settings loadgen.TestSettings
	// ClientRejected and ClientExpired are the Remote's counts of responses
	// the servers answered StatusRejected / StatusExpired.
	ClientRejected int64
	ClientExpired  int64
	// Replicas holds one metrics snapshot per server replica.
	Replicas []serve.Snapshot
}

// CheckServing runs the serving conformance checks: a remote or sharded run
// satisfies the run rules only if shed load is visible end to end (server
// reject/expire counters reconcile with the client's counts and the run's
// ResponsesDropped — nothing dropped silently on either side of the wire),
// drops invalidate the run, every issued query completes, and the run's
// latency-bound verdict is reproducible from the merged latency log.
func CheckServing(ev ServingEvidence) ([]Finding, error) {
	if ev.Result == nil {
		return nil, fmt.Errorf("audit: serving evidence needs a Result")
	}
	if len(ev.Replicas) == 0 {
		return nil, fmt.Errorf("audit: serving evidence needs at least one replica snapshot")
	}
	merged := serve.MergeSnapshots(ev.Replicas...)
	findings := []Finding{
		checkDropAccounting(ev, merged),
		checkDropValidity(ev.Result),
		checkCompletion(ev.Result),
	}
	if ev.Result.Scenario == loadgen.Server {
		findings = append(findings, checkLatencyBound(ev))
	}
	return findings, nil
}

// checkDropAccounting reconciles shed load across the wire: every reject or
// expiry the replicas counted must have surfaced at the client, and every
// dropped response the LoadGen counted must be explained by a client-observed
// reject/expiry (an excess means transport loss, a deficit means silent
// shedding — both violations).
func checkDropAccounting(ev ServingEvidence, merged serve.Snapshot) Finding {
	serverShed := int64(merged.Rejected + merged.Shed)
	serverExpired := int64(merged.Expired)
	clientDrops := ev.ClientRejected + ev.ClientExpired
	detail := fmt.Sprintf(
		"servers rejected %d and expired %d across %d replicas; client observed %d rejected, %d expired; run counted %d dropped responses",
		serverShed, serverExpired, len(ev.Replicas), ev.ClientRejected, ev.ClientExpired, ev.Result.ResponsesDropped)
	switch {
	case serverShed != ev.ClientRejected:
		return Finding{Name: "serving-drop-accounting", Pass: false,
			Detail: detail + " — server rejects did not all surface at the client (silent shed)"}
	case serverExpired != ev.ClientExpired:
		return Finding{Name: "serving-drop-accounting", Pass: false,
			Detail: detail + " — server expiries did not all surface at the client (silent expiry)"}
	case int64(ev.Result.ResponsesDropped) != clientDrops:
		return Finding{Name: "serving-drop-accounting", Pass: false,
			Detail: detail + " — dropped responses not fully explained by rejects/expiries (transport loss or miscount)"}
	default:
		return Finding{Name: "serving-drop-accounting", Pass: true, Detail: detail + " — all reconciled"}
	}
}

// checkDropValidity enforces that dropped responses invalidate the run: shed
// load may happen, but a submission must not report such a run as valid.
func checkDropValidity(r *loadgen.Result) Finding {
	if r.ResponsesDropped > 0 && r.Valid {
		return Finding{Name: "serving-drop-validity", Pass: false,
			Detail: fmt.Sprintf("run dropped %d responses yet reports valid", r.ResponsesDropped)}
	}
	return Finding{Name: "serving-drop-validity", Pass: true,
		Detail: fmt.Sprintf("%d dropped responses, run valid=%v", r.ResponsesDropped, r.Valid)}
}

// checkCompletion enforces termination semantics: every issued query and
// sample completed (possibly as dropped) — an overloaded or dying fleet must
// degrade, never hang or lose work.
func checkCompletion(r *loadgen.Result) Finding {
	if r.QueriesCompleted != r.QueriesIssued || r.SamplesCompleted != r.SamplesIssued {
		return Finding{Name: "serving-completion", Pass: false,
			Detail: fmt.Sprintf("completed %d of %d queries, %d of %d samples",
				r.QueriesCompleted, r.QueriesIssued, r.SamplesCompleted, r.SamplesIssued)}
	}
	return Finding{Name: "serving-completion", Pass: true,
		Detail: fmt.Sprintf("all %d queries (%d samples) completed", r.QueriesIssued, r.SamplesIssued)}
}

// checkLatencyBound recomputes the Server scenario's latency-bound verdict
// from the merged per-query latency log and compares it with what the run
// reported, so a submission cannot understate its violation fraction.
func checkLatencyBound(ev ServingEvidence) Finding {
	bound := ev.Settings.ServerTargetLatency
	if bound <= 0 {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: "no server latency bound configured"}
	}
	log := ev.Result.QueryLatencies.Sorted
	if len(log) == 0 {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: "result carries no latency log to recompute from"}
	}
	over := 0
	for _, d := range log {
		if d > bound {
			over++
		}
	}
	recomputed := float64(over) / float64(len(log))
	reported := ev.Result.LatencyBoundViolations
	if diff := recomputed - reported; diff > 1e-9 || diff < -1e-9 {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: fmt.Sprintf("recomputed violation fraction %.6f (%d of %d over %v) != reported %.6f",
				recomputed, over, len(log), bound, reported)}
	}
	allowed := 1 - ev.Settings.ServerLatencyPercentile
	violates := recomputed > allowed+1e-12
	if violates && ev.Result.Valid {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: fmt.Sprintf("%.3f%% of queries exceed the %v bound (allowed %.3f%%) yet the run reports valid",
				100*recomputed, bound, 100*allowed)}
	}
	return Finding{Name: "serving-latency-bound", Pass: true,
		Detail: fmt.Sprintf("%d of %d merged queries over the %v bound (%.3f%%, allowed %.3f%%), verdict consistent",
			over, len(log), bound, 100*recomputed, 100*allowed)}
}
