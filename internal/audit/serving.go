package audit

import (
	"fmt"

	"mlperf/internal/loadgen"
	"mlperf/internal/serve"
	"mlperf/internal/trace"
)

// ServingEvidence bundles one remote (possibly sharded) run with the
// serving-side counters needed to verify the paper's run rules across a
// network boundary. The replica snapshots must be deltas covering exactly the
// audited run (a fresh deployment per audited run is the simple way to get
// them), and the client counters must come from the Remote that drove it.
type ServingEvidence struct {
	// Result is the LoadGen's view of the run.
	Result *loadgen.Result
	// Settings is the configuration the run used (latency bound, percentile).
	Settings loadgen.TestSettings
	// ClientRejected and ClientExpired are the Remote's counts of responses
	// the servers answered StatusRejected / StatusExpired.
	ClientRejected int64
	ClientExpired  int64
	// ClientTransportDrops is the Remote's count of requests settled as
	// dropped after failover was exhausted — transport loss the fleet could
	// not absorb, the only legitimate drops not explained by a server-side
	// reject or expiry.
	ClientTransportDrops int64
	// Recovery is the client's fault-tolerance record for the run (down/up
	// intervals, rejoins, redials, retries). Nil means the run claims no
	// recovery machinery was exercised; when set, CheckServing reconciles it
	// against the drop accounting and verifies every outage that ended was
	// closed by a proper re-join.
	Recovery *serve.RecoveryStats
	// Replicas holds one metrics snapshot per server replica.
	Replicas []serve.Snapshot
	// Traces holds the run's captured trace records (client and server
	// origin, merged). Nil means the run was untraced; non-nil (even empty)
	// means tracing was on and CheckServing verifies the span trees are
	// well-formed: stages non-negative, stage sums bounded by the end-to-end
	// span, and every folded server block nested inside its client span.
	Traces []trace.Record
}

// CheckServing runs the serving conformance checks: a remote or sharded run
// satisfies the run rules only if shed load is visible end to end (server
// reject/expire counters reconcile with the client's counts and the run's
// ResponsesDropped — nothing dropped silently on either side of the wire),
// drops invalidate the run, every issued query completes, and the run's
// latency-bound verdict is reproducible from the merged latency log.
func CheckServing(ev ServingEvidence) ([]Finding, error) {
	if ev.Result == nil {
		return nil, fmt.Errorf("audit: serving evidence needs a Result")
	}
	if len(ev.Replicas) == 0 {
		return nil, fmt.Errorf("audit: serving evidence needs at least one replica snapshot")
	}
	merged := serve.MergeSnapshots(ev.Replicas...)
	findings := []Finding{
		checkDropAccounting(ev, merged),
		checkDropValidity(ev.Result),
		checkCompletion(ev.Result),
	}
	if ev.Result.Scenario == loadgen.Server {
		findings = append(findings, checkLatencyBound(ev))
	}
	if ev.Result.Scenario == loadgen.Swarm {
		findings = append(findings, checkSwarm(ev))
	}
	if ev.Recovery != nil {
		findings = append(findings, checkRecovery(ev))
	}
	if capacityExercised(ev) {
		findings = append(findings, checkCapacity(ev))
	}
	if ev.Traces != nil {
		findings = append(findings, checkTraces(ev.Traces))
	}
	return findings, nil
}

// capacityExercised reports whether any replica recorded resize events.
func capacityExercised(ev ServingEvidence) bool {
	for _, s := range ev.Replicas {
		if len(s.Resizes) > 0 {
			return true
		}
	}
	return false
}

// checkCapacity reconciles the capacity decisions a run recorded: within
// each replica, each (model, resource) event chain must be contiguous —
// every event's From equals the previous event's To, so no resize went
// unrecorded and none was recorded twice — limits must stay positive, event
// times must be well-formed and ordered, and the chain's final To must match
// the live limit the snapshot reports. A run that grew its pools under load
// proves here that the audit saw every step of the growth.
func checkCapacity(ev ServingEvidence) Finding {
	total := 0
	for ri, snap := range ev.Replicas {
		type chain struct {
			last    int
			lastAt  int // index in snap.Resizes, for ordering detail
			started bool
		}
		chains := map[string]*chain{}
		for i, e := range snap.Resizes {
			total++
			if e.Resource == "" {
				return Finding{Name: "serving-capacity", Pass: false,
					Detail: fmt.Sprintf("replica %d resize event %d names no resource", ri, i)}
			}
			if e.Time.IsZero() {
				return Finding{Name: "serving-capacity", Pass: false,
					Detail: fmt.Sprintf("replica %d resize event %d (%s) has no timestamp", ri, i, e.Resource)}
			}
			if e.From <= 0 || e.To <= 0 {
				return Finding{Name: "serving-capacity", Pass: false,
					Detail: fmt.Sprintf("replica %d resize event %d (%s) moves %d -> %d: limits must stay positive", ri, i, e.Resource, e.From, e.To)}
			}
			if e.From == e.To {
				return Finding{Name: "serving-capacity", Pass: false,
					Detail: fmt.Sprintf("replica %d resize event %d (%s) records no change (%d -> %d)", ri, i, e.Resource, e.From, e.To)}
			}
			key := e.Model + "\x00" + e.Resource
			c := chains[key]
			if c == nil {
				c = &chain{}
				chains[key] = c
			}
			if c.started && e.From != c.last {
				return Finding{Name: "serving-capacity", Pass: false,
					Detail: fmt.Sprintf("replica %d model %q %s chain broken: event %d starts from %d but the previous event (index %d) ended at %d — a resize went unrecorded or was double-counted",
						ri, e.Model, e.Resource, i, e.From, c.lastAt, c.last)}
			}
			c.last, c.lastAt, c.started = e.To, i, true
		}
		// A single-host snapshot's live limits must agree with where each
		// chain landed. Merged snapshots sum workers and queue limits across
		// inputs, so the identity only holds per unmerged replica.
		if snap.Merged <= 1 {
			check := func(resource string, live int) *Finding {
				c := chains[snap.Model+"\x00"+resource]
				if c == nil || !c.started || live == 0 || c.last == live {
					return nil
				}
				return &Finding{Name: "serving-capacity", Pass: false,
					Detail: fmt.Sprintf("replica %d %s chain ends at %d but the snapshot reports %d live", ri, resource, c.last, live)}
			}
			if f := check(serve.ResourceWorkers, snap.Workers); f != nil {
				return *f
			}
			if f := check(serve.ResourceQueue, snap.QueueLimit); f != nil {
				return *f
			}
			if f := check(serve.ResourceMaxBatch, snap.MaxBatch); f != nil {
				return *f
			}
		}
	}
	return Finding{Name: "serving-capacity", Pass: true,
		Detail: fmt.Sprintf("%d resize events across %d replicas: chains contiguous, limits positive, final limits match snapshots", total, len(ev.Replicas))}
}

// checkDropAccounting reconciles shed load across the wire: every reject or
// expiry the replicas counted must have surfaced at the client, and every
// dropped response the LoadGen counted must be explained by a client-observed
// reject/expiry (an excess means transport loss, a deficit means silent
// shedding — both violations).
// A run whose recovery record shows transport activity (outages, redials or
// failover retries) cannot hold the server-side counters to strict equality:
// a crashed replica's epoch may have counted work the client never heard
// about (responses lost on a dying connection, counters lost between the
// client's last metrics fetch and the crash). The client-side identity stays
// strict regardless — every dropped response must be a client-observed
// reject, expiry or exhausted-failover transport drop.
func checkDropAccounting(ev ServingEvidence, merged serve.Snapshot) Finding {
	serverShed := int64(merged.Rejected + merged.Shed)
	serverExpired := int64(merged.Expired)
	clientDrops := ev.ClientRejected + ev.ClientExpired + ev.ClientTransportDrops
	faulty := ev.Recovery != nil &&
		(len(ev.Recovery.DownIntervals) > 0 || ev.Recovery.ConnRedials > 0 || ev.Recovery.Retries > 0)
	detail := fmt.Sprintf(
		"servers rejected %d and expired %d across %d replicas; client observed %d rejected, %d expired, %d transport-dropped; run counted %d dropped responses",
		serverShed, serverExpired, len(ev.Replicas), ev.ClientRejected, ev.ClientExpired,
		ev.ClientTransportDrops, ev.Result.ResponsesDropped)
	switch {
	case int64(ev.Result.ResponsesDropped) != clientDrops:
		return Finding{Name: "serving-drop-accounting", Pass: false,
			Detail: detail + " — dropped responses not fully explained by rejects/expiries/transport drops (silent loss or miscount)"}
	case ev.ClientTransportDrops > 0 && !faulty:
		return Finding{Name: "serving-drop-accounting", Pass: false,
			Detail: detail + " — transport drops claimed without any recorded transport faults"}
	case !faulty && serverShed != ev.ClientRejected:
		return Finding{Name: "serving-drop-accounting", Pass: false,
			Detail: detail + " — server rejects did not all surface at the client (silent shed)"}
	case !faulty && serverExpired != ev.ClientExpired:
		return Finding{Name: "serving-drop-accounting", Pass: false,
			Detail: detail + " — server expiries did not all surface at the client (silent expiry)"}
	default:
		if faulty {
			return Finding{Name: "serving-drop-accounting", Pass: true,
				Detail: detail + " — client-side identity reconciled (server counters informational: run recorded transport faults)"}
		}
		return Finding{Name: "serving-drop-accounting", Pass: true, Detail: detail + " — all reconciled"}
	}
}

// checkRecovery verifies the fault-tolerance record itself: every outage
// interval is well-formed, every outage that ended was closed by a proper
// re-join (probe handshake + reopen barrier — Rejoins must equal the closed
// intervals), and the record's transport-drop count matches the client
// counter used in the drop accounting.
func checkRecovery(ev ServingEvidence) Finding {
	rec := ev.Recovery
	closed, open := 0, 0
	for _, iv := range rec.DownIntervals {
		if iv.Start.IsZero() {
			return Finding{Name: "serving-recovery", Pass: false,
				Detail: fmt.Sprintf("replica %d outage interval has no start time", iv.Replica)}
		}
		if iv.End.IsZero() {
			open++
			continue
		}
		if iv.End.Before(iv.Start) {
			return Finding{Name: "serving-recovery", Pass: false,
				Detail: fmt.Sprintf("replica %d outage interval ends %v before it starts", iv.Replica, iv.Start.Sub(iv.End))}
		}
		closed++
	}
	detail := fmt.Sprintf(
		"%d outages (%d rejoined, %d still down), %d connection redials, %d failover retries, %d transport drops",
		len(rec.DownIntervals), closed, open, rec.ConnRedials, rec.Retries, rec.TransportDrops)
	switch {
	case rec.Rejoins != closed:
		return Finding{Name: "serving-recovery", Pass: false,
			Detail: detail + fmt.Sprintf(" — %d rejoins recorded for %d ended outages: an outage ended without the probe + reopen-barrier re-join", rec.Rejoins, closed)}
	case rec.TransportDrops != ev.ClientTransportDrops:
		return Finding{Name: "serving-recovery", Pass: false,
			Detail: detail + fmt.Sprintf(" — recovery record claims %d transport drops but the client counted %d", rec.TransportDrops, ev.ClientTransportDrops)}
	case rec.ConnRedials < int64(rec.Rejoins):
		return Finding{Name: "serving-recovery", Pass: false,
			Detail: detail + " — more replica rejoins than connection redials; a rejoin without a re-dialed connection is impossible"}
	default:
		return Finding{Name: "serving-recovery", Pass: true, Detail: detail + " — intervals well-formed, rejoins complete"}
	}
}

// checkDropValidity enforces that dropped responses invalidate the run: shed
// load may happen, but a submission must not report such a run as valid.
func checkDropValidity(r *loadgen.Result) Finding {
	if r.ResponsesDropped > 0 && r.Valid {
		return Finding{Name: "serving-drop-validity", Pass: false,
			Detail: fmt.Sprintf("run dropped %d responses yet reports valid", r.ResponsesDropped)}
	}
	return Finding{Name: "serving-drop-validity", Pass: true,
		Detail: fmt.Sprintf("%d dropped responses, run valid=%v", r.ResponsesDropped, r.Valid)}
}

// checkCompletion enforces termination semantics: every issued query and
// sample completed (possibly as dropped) — an overloaded or dying fleet must
// degrade, never hang or lose work.
func checkCompletion(r *loadgen.Result) Finding {
	if r.QueriesCompleted != r.QueriesIssued || r.SamplesCompleted != r.SamplesIssued {
		return Finding{Name: "serving-completion", Pass: false,
			Detail: fmt.Sprintf("completed %d of %d queries, %d of %d samples",
				r.QueriesCompleted, r.QueriesIssued, r.SamplesCompleted, r.SamplesIssued)}
	}
	return Finding{Name: "serving-completion", Pass: true,
		Detail: fmt.Sprintf("all %d queries (%d samples) completed", r.QueriesIssued, r.SamplesIssued)}
}

// checkLatencyBound recomputes the Server scenario's latency-bound verdict
// from the merged per-query latency log and compares it with what the run
// reported, so a submission cannot understate its violation fraction.
func checkLatencyBound(ev ServingEvidence) Finding {
	bound := ev.Settings.ServerTargetLatency
	if bound <= 0 {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: "no server latency bound configured"}
	}
	log := ev.Result.QueryLatencies.Sorted
	if len(log) == 0 {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: "result carries no latency log to recompute from"}
	}
	over := 0
	for _, d := range log {
		if d > bound {
			over++
		}
	}
	recomputed := float64(over) / float64(len(log))
	reported := ev.Result.LatencyBoundViolations
	if diff := recomputed - reported; diff > 1e-9 || diff < -1e-9 {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: fmt.Sprintf("recomputed violation fraction %.6f (%d of %d over %v) != reported %.6f",
				recomputed, over, len(log), bound, reported)}
	}
	allowed := 1 - ev.Settings.ServerLatencyPercentile
	violates := recomputed > allowed+1e-12
	if violates && ev.Result.Valid {
		return Finding{Name: "serving-latency-bound", Pass: false,
			Detail: fmt.Sprintf("%.3f%% of queries exceed the %v bound (allowed %.3f%%) yet the run reports valid",
				100*recomputed, bound, 100*allowed)}
	}
	return Finding{Name: "serving-latency-bound", Pass: true,
		Detail: fmt.Sprintf("%d of %d merged queries over the %v bound (%.3f%%, allowed %.3f%%), verdict consistent",
			over, len(log), bound, 100*recomputed, 100*allowed)}
}

// checkSwarm verifies a Swarm run's per-class accounting and verdicts: the
// class counters must partition the run's aggregate counters exactly (every
// query belongs to exactly one class — nothing double-counted, nothing
// unclassified), every class's latency-bound verdict must be reproducible
// from its reported violation fraction and target percentile, and a class
// over its bound must have invalidated the run. The session population must
// match the configured one, and churn may only occur when a session lifetime
// is configured.
func checkSwarm(ev ServingEvidence) Finding {
	fail := func(format string, args ...interface{}) Finding {
		return Finding{Name: "serving-swarm", Pass: false,
			Detail: fmt.Sprintf(format, args...)}
	}
	res := ev.Result
	if len(res.SwarmClasses) == 0 {
		return fail("swarm run reports no traffic classes")
	}
	if res.SwarmSessions != ev.Settings.SwarmSessions {
		return fail("result reports %d sessions, settings configured %d",
			res.SwarmSessions, ev.Settings.SwarmSessions)
	}
	if res.SwarmChurns < 0 {
		return fail("negative churn count %d", res.SwarmChurns)
	}
	if res.SwarmChurns > 0 && ev.Settings.SwarmSessionLifetime <= 0 {
		return fail("%d churn events with churn disabled (no session lifetime)", res.SwarmChurns)
	}
	var issued, completed, dropped int
	for i, c := range res.SwarmClasses {
		if c.QueriesIssued < 0 || c.QueriesCompleted < 0 || c.ResponsesDropped < 0 {
			return fail("class %d (%q) has negative counters", i, c.Name)
		}
		if c.QueriesCompleted > c.QueriesIssued {
			return fail("class %d (%q) completed %d of %d issued queries",
				i, c.Name, c.QueriesCompleted, c.QueriesIssued)
		}
		if c.TargetLatency <= 0 || c.TargetPercentile <= 0 || c.TargetPercentile >= 1 {
			return fail("class %d (%q) carries no valid latency target", i, c.Name)
		}
		allowed := 1 - c.TargetPercentile
		violates := c.BoundViolations > allowed+1e-12
		if violates == c.Valid {
			return fail("class %q: %.3f%% violations against an allowed %.3f%% contradicts its Valid=%v verdict",
				c.Name, 100*c.BoundViolations, 100*allowed, c.Valid)
		}
		if violates && res.Valid {
			return fail("class %q exceeds its %v bound yet the run reports valid", c.Name, c.TargetLatency)
		}
		issued += c.QueriesIssued
		completed += c.QueriesCompleted
		dropped += c.ResponsesDropped
	}
	if issued != res.QueriesIssued {
		return fail("class issued counts sum to %d, run issued %d", issued, res.QueriesIssued)
	}
	if completed != res.QueriesCompleted {
		return fail("class completed counts sum to %d, run completed %d", completed, res.QueriesCompleted)
	}
	if dropped != res.ResponsesDropped {
		return fail("class dropped counts sum to %d, run dropped %d", dropped, res.ResponsesDropped)
	}
	return Finding{Name: "serving-swarm", Pass: true,
		Detail: fmt.Sprintf("%d sessions, %d churns, %d classes partition %d queries, per-class verdicts consistent",
			res.SwarmSessions, res.SwarmChurns, len(res.SwarmClasses), issued)}
}
